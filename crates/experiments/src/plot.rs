//! Minimal dependency-free SVG line charts, for regenerating the paper's
//! figures as image files.
//!
//! Deliberately small: linear axes, polyline series with markers, optional
//! min–max whiskers (the paper's Figs. 6/7 range bars), a legend, and tick
//! labels. Enough to *see* the reproduced curves without pulling a
//! plotting dependency into the workspace.

use std::fmt::Write as _;

/// One data point: x, y, and an optional `[lo, hi]` whisker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlotPoint {
    /// X coordinate (data units).
    pub x: f64,
    /// Y coordinate (data units).
    pub y: f64,
    /// Optional range bar around `y`.
    pub range: Option<(f64, f64)>,
}

impl PlotPoint {
    /// A point without a whisker.
    pub fn new(x: f64, y: f64) -> Self {
        PlotPoint { x, y, range: None }
    }

    /// A point with a `[lo, hi]` whisker.
    pub fn with_range(x: f64, y: f64, lo: f64, hi: f64) -> Self {
        PlotPoint {
            x,
            y,
            range: Some((lo, hi)),
        }
    }
}

/// A named series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// The points, in x order.
    pub points: Vec<PlotPoint>,
}

/// A line chart with linear axes.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 480.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 60.0;
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn series(&mut self, name: impl Into<String>, points: Vec<PlotPoint>) -> &mut Self {
        self.series.push(Series {
            name: name.into(),
            points,
        });
        self
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series were added.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min: f64 = 0.0; // anchor at zero: throughput/delay plots
        let mut y_max = f64::NEG_INFINITY;
        for s in &self.series {
            for p in &s.points {
                x_min = x_min.min(p.x);
                x_max = x_max.max(p.x);
                let (lo, hi) = p.range.unwrap_or((p.y, p.y));
                y_min = y_min.min(lo.min(p.y));
                y_max = y_max.max(hi.max(p.y));
            }
        }
        if !x_min.is_finite() {
            (0.0, 1.0, 0.0, 1.0)
        } else {
            let y_pad = ((y_max - y_min).abs()).max(1e-9) * 0.05;
            (x_min, x_max.max(x_min + 1e-9), y_min, y_max + y_pad)
        }
    }

    /// Renders the chart as a standalone SVG document.
    pub fn render_svg(&self) -> String {
        let (x_min, x_max, y_min, y_max) = self.bounds();
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = move |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = move |y: f64| MARGIN_T + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
        // Title and axis labels.
        let _ = write!(
            svg,
            r#"<text x="{x}" y="28" font-family="sans-serif" font-size="16" text-anchor="middle">{t}</text>"#,
            x = WIDTH / 2.0,
            t = xml_escape(&self.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="13" text-anchor="middle">{t}</text>"#,
            x = MARGIN_L + plot_w / 2.0,
            y = HEIGHT - 15.0,
            t = xml_escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="18" y="{y}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 18 {y})">{t}</text>"#,
            y = MARGIN_T + plot_h / 2.0,
            t = xml_escape(&self.y_label)
        );
        // Axes box and ticks.
        let _ = write!(
            svg,
            r#"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="black"/>"#
        );
        for i in 0..=5 {
            let fx = i as f64 / 5.0;
            let x_val = x_min + fx * (x_max - x_min);
            let y_val = y_min + fx * (y_max - y_min);
            let px = sx(x_val);
            let py = sy(y_val);
            let _ = write!(
                svg,
                r#"<line x1="{px}" y1="{b}" x2="{px}" y2="{b2}" stroke="black"/><text x="{px}" y="{ty}" font-family="sans-serif" font-size="11" text-anchor="middle">{v}</text>"#,
                b = MARGIN_T + plot_h,
                b2 = MARGIN_T + plot_h + 5.0,
                ty = MARGIN_T + plot_h + 18.0,
                v = fmt_tick(x_val)
            );
            let _ = write!(
                svg,
                r#"<line x1="{l}" y1="{py}" x2="{l2}" y2="{py}" stroke="black"/><text x="{tx}" y="{tyy}" font-family="sans-serif" font-size="11" text-anchor="end">{v}</text>"#,
                l = MARGIN_L - 5.0,
                l2 = MARGIN_L,
                tx = MARGIN_L - 8.0,
                tyy = py + 4.0,
                v = fmt_tick(y_val)
            );
            // Light horizontal gridline.
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{py}" x2="{r}" y2="{py}" stroke="#dddddd"/>"##,
                r = MARGIN_L + plot_w
            );
        }
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let mut path = String::new();
            for p in &s.points {
                let _ = write!(path, "{},{} ", sx(p.x), sy(p.y));
            }
            let _ = write!(
                svg,
                r#"<polyline points="{path}" fill="none" stroke="{color}" stroke-width="2"/>"#
            );
            for p in &s.points {
                if let Some((lo, hi)) = p.range {
                    let _ = write!(
                        svg,
                        r#"<line x1="{x}" y1="{y1}" x2="{x}" y2="{y2}" stroke="{color}" stroke-width="1"/>"#,
                        x = sx(p.x),
                        y1 = sy(lo),
                        y2 = sy(hi)
                    );
                }
                let _ = write!(
                    svg,
                    r#"<circle cx="{x}" cy="{y}" r="3.5" fill="{color}"/>"#,
                    x = sx(p.x),
                    y = sy(p.y)
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 20.0 * i as f64;
            let lx = WIDTH - MARGIN_R + 15.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{x2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty}" font-family="sans-serif" font-size="12">{n}</text>"#,
                x2 = lx + 24.0,
                tx = lx + 30.0,
                ty = ly + 4.0,
                n = xml_escape(&s.name)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Renders and writes the chart to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render_svg())
    }
}

fn fmt_tick(v: f64) -> String {
    // Axis ticks at (or within rounding noise of) the origin print as "0".
    if v.abs() < 1e-12 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        let mut c = LineChart::new("Fig & test", "θ (deg)", "throughput");
        c.series(
            "DRTS-DCTS",
            vec![
                PlotPoint::with_range(30.0, 0.5, 0.3, 0.7),
                PlotPoint::new(90.0, 0.4),
                PlotPoint::new(150.0, 0.3),
            ],
        );
        c.series(
            "ORTS-OCTS",
            vec![PlotPoint::new(30.0, 0.32), PlotPoint::new(150.0, 0.32)],
        );
        c
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = chart().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(
            svg.matches("<polyline").count(),
            2,
            "one polyline per series"
        );
        assert!(svg.contains("DRTS-DCTS"));
        assert!(svg.contains("ORTS-OCTS"));
        // Title ampersand must be escaped.
        assert!(svg.contains("Fig &amp; test"));
        assert!(!svg.contains("Fig & test"));
    }

    #[test]
    fn whiskers_render_as_extra_lines() {
        let svg = chart().render_svg();
        // 1 whisker + 2 legend lines + axis ticks; count circles instead:
        assert_eq!(svg.matches("<circle").count(), 5, "one marker per point");
    }

    #[test]
    fn empty_chart_renders_without_panic() {
        let c = LineChart::new("empty", "x", "y");
        assert!(c.is_empty());
        let svg = c.render_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn points_scale_into_plot_area() {
        let mut c = LineChart::new("t", "x", "y");
        c.series(
            "s",
            vec![PlotPoint::new(0.0, 0.0), PlotPoint::new(10.0, 1.0)],
        );
        let svg = c.render_svg();
        // The max point must map to the top-right region of the plot box.
        // (Smoke check: coordinates stay within the canvas.)
        for token in svg.split(['"', ' ', ',']) {
            if let Ok(v) = token.parse::<f64>() {
                assert!((-1000.0..=1000.0).contains(&v), "wild coordinate {v}");
            }
        }
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("dirca_plot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chart.svg");
        chart().save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(0.5), "0.50");
        assert_eq!(fmt_tick(42.0), "42.0");
        assert_eq!(fmt_tick(500.0), "500");
    }
}
