//! E1 — Fig. 5: analytical maximum throughput vs beamwidth.

use dirca_analysis::optimize::max_throughput;
use dirca_analysis::sweep::{fig5, paper_theta_grid, Fig5Row};
use dirca_analysis::{ModelInput, ProtocolTimes};
use dirca_mac::Scheme;

use crate::table::Table;

/// Computes the Fig. 5 series for density `n_avg` on the paper's 15°–180°
/// grid.
pub fn compute(n_avg: f64) -> Vec<Fig5Row> {
    fig5(ProtocolTimes::paper(), n_avg, &paper_theta_grid())
}

/// Renders a Fig. 5 series as a markdown table.
pub fn render(n_avg: f64, rows: &[Fig5Row]) -> String {
    let mut t = Table::new(vec![
        "θ (deg)".into(),
        "ORTS-OCTS".into(),
        "DRTS-DCTS".into(),
        "DRTS-OCTS".into(),
    ]);
    for row in rows {
        t.row(vec![
            format!("{:.0}", row.theta_degrees),
            format!("{:.4}", row.orts_octs),
            format!("{:.4}", row.drts_dcts),
            format!("{:.4}", row.drts_octs),
        ]);
    }
    format!(
        "Fig. 5 — maximum achievable throughput vs beamwidth (N = {n_avg}, \
         l_rts=l_cts=l_ack=5τ, l_data=100τ)\n\n{}",
        t.render()
    )
}

/// Renders the optimal attempt probabilities `p*` behind the Fig. 5
/// optima — the quantity the paper argues must stay below ~0.1 for
/// collision avoidance to work.
pub fn render_optimal_p(n_avg: f64) -> String {
    let mut t = Table::new(vec![
        "θ (deg)".into(),
        "p* ORTS-OCTS".into(),
        "p* DRTS-DCTS".into(),
        "p* DRTS-OCTS".into(),
    ]);
    for deg in paper_theta_grid() {
        let input = ModelInput::new(ProtocolTimes::paper(), n_avg, deg.to_radians());
        let p = |s: Scheme| max_throughput(s, &input).p;
        t.row(vec![
            format!("{deg:.0}"),
            format!("{:.4}", p(Scheme::OrtsOcts)),
            format!("{:.4}", p(Scheme::DrtsDcts)),
            format!("{:.4}", p(Scheme::DrtsOcts)),
        ]);
    }
    format!(
        "Optimal attempt probabilities p* (N = {n_avg})

{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_covers_paper_grid() {
        let rows = compute(5.0);
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0].theta_degrees, 15.0);
        assert_eq!(rows[11].theta_degrees, 180.0);
    }

    #[test]
    fn optimal_p_stays_in_collision_avoidance_regime() {
        let text = render_optimal_p(5.0);
        assert!(text.contains("p* DRTS-DCTS"));
        // Parse the numbers back and check the paper's p < 0.1 claim.
        for token in text.split_whitespace() {
            if let Ok(v) = token.parse::<f64>() {
                if v < 1.0 && text.contains("0.") {
                    assert!(v < 0.2, "optimal p {v} far outside the CA regime");
                }
            }
        }
    }

    #[test]
    fn render_contains_series() {
        let rows = compute(3.0);
        let text = render(3.0, &rows);
        assert!(text.contains("DRTS-DCTS"));
        assert!(text.contains("N = 3"));
        assert!(text.lines().count() > 12);
    }
}
