//! The RNG stream-salt registry — the single place every stream salt in
//! the workspace is defined.
//!
//! Independent random streams are derived as
//! `dirca_sim::rng::derive_seed(master_seed, salt)`; two call sites that
//! share a salt share a stream and silently correlate. Keeping every salt
//! here, each bound to a documented `const`, makes pairwise uniqueness
//! reviewable at a glance and lets `dirca-audit` enforce it mechanically
//! (rule `DA005 salt-unique`: salts defined elsewhere, duplicate values,
//! and raw literals at `derive_seed` call sites are all findings).
//!
//! Salts that index per-trial streams (`RUN_STREAM_SALT + trial`) reserve
//! a *range*; keep new salts well clear of an existing base (trial counts
//! stay far below `0x1_0000`, so spacing bases by at least that much is
//! plenty).

/// Fault-draw streams, one per receiving node, separated from every other
/// per-node stream. Fault randomness must never touch the traffic/backoff
/// streams: that isolation is what keeps a zero-fault plan byte-identical
/// to a run with no plan at all, and lets fault plans change without
/// perturbing the contention sequence more than the faults themselves do.
pub const FAULT_STREAM_SALT: u64 = 0xFA17_1A11;

/// Topology placement streams: node-position draws for randomized
/// topologies, indexed per trial via the `stream_rng` stream argument.
pub const TOPOLOGY_STREAM_SALT: u64 = 0xA11CE;

/// Per-trial simulation master seeds: each trial `t` runs under
/// `derive_seed(seed, RUN_STREAM_SALT + t)`, keeping trials independent
/// of each other and of topology placement.
pub const RUN_STREAM_SALT: u64 = 0xB0B;

/// Analytic-model sampling streams for the model-vs-simulation
/// comparison, indexed per traffic point.
pub const MODEL_STREAM_SALT: u64 = 0xF1E1D;

/// Simulation seeds for the model-vs-simulation comparison, indexed per
/// traffic point; distinct from [`RUN_STREAM_SALT`] so the comparison
/// never reuses a sweep trial's stream.
pub const MODEL_RUN_STREAM_SALT: u64 = 0x51D;

/// Scaling-benchmark streams: Poisson-field placement and run seeds for
/// the 1k–100k-node grid benchmarks, indexed per field size via a second
/// `derive_seed(·, nodes)` step. Separate from [`TOPOLOGY_STREAM_SALT`]
/// so scaling fields never correlate with the paper-grid ring draws.
pub const SCALING_STREAM_SALT: u64 = 0x5CA_11E;

/// Client retry-backoff jitter streams for `dirca-serve`, indexed per
/// attempt. Jitter only shapes *when* a client retries, never what it
/// computes — but it is still a seeded stream so two clients launched
/// with different seeds desynchronize deterministically and a test can
/// replay the exact retry schedule.
pub const SERVE_BACKOFF_STREAM_SALT: u64 = 0x5E_1BAC;

/// Every registered salt, for the pairwise-uniqueness test and for
/// documentation tooling.
pub const ALL_STREAM_SALTS: &[(&str, u64)] = &[
    ("FAULT_STREAM_SALT", FAULT_STREAM_SALT),
    ("TOPOLOGY_STREAM_SALT", TOPOLOGY_STREAM_SALT),
    ("RUN_STREAM_SALT", RUN_STREAM_SALT),
    ("MODEL_STREAM_SALT", MODEL_STREAM_SALT),
    ("MODEL_RUN_STREAM_SALT", MODEL_RUN_STREAM_SALT),
    ("SCALING_STREAM_SALT", SCALING_STREAM_SALT),
    ("SERVE_BACKOFF_STREAM_SALT", SERVE_BACKOFF_STREAM_SALT),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salts_are_pairwise_unique() {
        for (i, (name_a, a)) in ALL_STREAM_SALTS.iter().enumerate() {
            for (name_b, b) in &ALL_STREAM_SALTS[i + 1..] {
                assert_ne!(
                    a, b,
                    "{name_a} and {name_b} share a value: correlated RNG streams"
                );
            }
        }
    }

    #[test]
    fn registry_lists_every_const() {
        // Guards against adding a const without registering it.
        let names: Vec<&str> = ALL_STREAM_SALTS.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "FAULT_STREAM_SALT",
                "TOPOLOGY_STREAM_SALT",
                "RUN_STREAM_SALT",
                "MODEL_STREAM_SALT",
                "MODEL_RUN_STREAM_SALT",
                "SCALING_STREAM_SALT",
                "SERVE_BACKOFF_STREAM_SALT",
            ]
        );
    }

    #[test]
    fn indexed_bases_do_not_collide_within_range() {
        // RUN/MODEL/MODEL_RUN are used as `BASE + index`; make sure the
        // reserved ranges stay disjoint for realistic index counts.
        let bases = [RUN_STREAM_SALT, MODEL_STREAM_SALT, MODEL_RUN_STREAM_SALT];
        const RANGE: u64 = 1024;
        for (i, a) in bases.iter().enumerate() {
            for b in &bases[i + 1..] {
                assert!(
                    a.abs_diff(*b) >= RANGE,
                    "indexed salt ranges overlap: {a:#x} vs {b:#x}"
                );
            }
        }
    }
}
