//! The simulated world: nodes, channel, and event plumbing.

use rand::rngs::SmallRng;
use rand::Rng;

use dirca_mac::{DataPacket, DcfMac, Dot11Params, Frame, FrameKind, MacContext, TimerKind};
use dirca_radio::{Channel, CompiledFaults, CoveragePlan, NodeId, SignalId, Transceiver};
use dirca_sim::{
    rng::{derive_seed, stream_rng},
    Scheduler, SimTime, TimerGeneration, World,
};
use dirca_topology::Topology;

use crate::config::TrafficModel;
use crate::salts::FAULT_STREAM_SALT;
use crate::SimConfig;

#[cfg(feature = "trace")]
use dirca_trace::{RecordKind, RingTrace, TraceRecord};

/// Events flowing through the network simulation.
///
/// Signal propagation is batched per transmission: one
/// [`NetEvent::WaveStart`]/[`NetEvent::WaveEnd`] pair carries a frame's
/// leading and trailing edges to *every* covered receiver, and the handler
/// walks the precomputed footprint in ascending node-id order. Heap traffic
/// per frame is O(1) instead of O(receivers), and the per-receiver
/// processing order is exactly that of the unbatched formulation: the
/// per-receiver edge events always formed a contiguous same-timestamp
/// block in ascending id order, with anything scheduled by their handlers
/// sequenced after the whole block.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// The leading edge of a transmission reaches every covered receiver.
    WaveStart {
        /// Transmitting node.
        src: NodeId,
        /// Transmission identity.
        id: SignalId,
        /// The frame being carried (delivered if decoding succeeds).
        frame: Frame,
        /// Whether the transmission was beamformed (aimed at `frame.dst`).
        directional: bool,
    },
    /// The trailing edge of a transmission passes every covered receiver.
    WaveEnd {
        /// Transmitting node.
        src: NodeId,
        /// Transmission identity.
        id: SignalId,
        /// The frame carried by the transmission.
        frame: Frame,
        /// Whether the transmission was beamformed (aimed at `frame.dst`).
        directional: bool,
    },
    /// `node`'s own transmission leaves the air.
    TxEnd {
        /// Transmitting node.
        node: NodeId,
    },
    /// A MAC timer scheduled by `node` fires.
    MacTimer {
        /// Owning node.
        node: NodeId,
        /// Which logical timer.
        kind: TimerKind,
        /// Arming generation (stale generations are ignored by the MAC).
        gen: TimerGeneration,
    },
    /// A Poisson traffic source at `node` produces a packet.
    Arrival {
        /// Generating node.
        node: NodeId,
    },
}

impl NetEvent {
    /// A stable snake_case class name, used to group events in profiling
    /// histograms and metrics labels.
    pub fn class(&self) -> &'static str {
        match self {
            NetEvent::WaveStart { .. } => "wave_start",
            NetEvent::WaveEnd { .. } => "wave_end",
            NetEvent::TxEnd { .. } => "tx_end",
            NetEvent::MacTimer { .. } => "mac_timer",
            NetEvent::Arrival { .. } => "arrival",
        }
    }
}

/// One transmission recorded by the optional frame trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// When the frame started on the air.
    pub time: SimTime,
    /// The frame (kind, src, dst, duration field).
    pub frame: Frame,
    /// Whether it was beamformed.
    pub directional: bool,
}

/// Airtime a node spent transmitting, split by frame kind — the direct
/// measurement of the paper's "time spent coordinating vs sending data"
/// argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AirtimeBreakdown {
    /// Airtime spent on RTS frames.
    pub rts: dirca_sim::SimDuration,
    /// Airtime spent on CTS frames.
    pub cts: dirca_sim::SimDuration,
    /// Airtime spent on DATA frames.
    pub data: dirca_sim::SimDuration,
    /// Airtime spent on ACK frames.
    pub ack: dirca_sim::SimDuration,
}

impl AirtimeBreakdown {
    /// Total transmit airtime.
    pub fn total(&self) -> dirca_sim::SimDuration {
        self.rts + self.cts + self.data + self.ack
    }

    /// Airtime spent on control frames (everything but DATA).
    pub fn control(&self) -> dirca_sim::SimDuration {
        self.rts + self.cts + self.ack
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &AirtimeBreakdown) {
        self.rts += other.rts;
        self.cts += other.cts;
        self.data += other.data;
        self.ack += other.ack;
    }
}

/// Per-node application-layer bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct AppStats {
    /// Packets handed up by the MAC (receiver side).
    pub delivered: u64,
    /// Packets the MAC finished successfully (sender side).
    pub completed: u64,
    /// Packets the MAC dropped after retries.
    pub dropped: u64,
    /// Poisson arrivals discarded because the source queue was full.
    pub queue_drops: u64,
    /// Receptions lost at this node to the injected frame error rate.
    pub fer_losses: u64,
    /// Receptions lost at this node because its radio was in an outage
    /// window for part of the frame.
    pub outage_losses: u64,
    /// End-to-end delays (seconds) of this node's acked packets, when
    /// delay recording is enabled.
    pub delay_samples: Vec<f64>,
    /// Transmit airtime by frame kind.
    pub airtime: AirtimeBreakdown,
    /// Sequence counter for generated packets.
    next_seq: u64,
}

/// Runtime fault-injection state: compiled lookup tables plus one
/// dedicated RNG stream per receiving node. `None` for trivial plans, so
/// the perfect-channel hot path is exactly the code that ran before fault
/// injection existed.
#[derive(Debug)]
struct FaultState {
    compiled: CompiledFaults,
    rngs: Vec<SmallRng>,
}

/// The fate of a reception the PHY decoded successfully, after the fault
/// layer has its say.
enum FaultVerdict {
    /// Hand the frame to the MAC.
    Deliver,
    /// The link's frame error rate corrupted it: the MAC sees noise
    /// (EIFS + the normal retry path), not a frame.
    Corrupt,
    /// The receiver's radio was out of service during the frame: nothing
    /// was decoded at all.
    Outage,
}

/// The network world: one MAC and transceiver per node, a shared channel,
/// saturated traffic sources, and the event dispatch glue.
#[derive(Debug)]
pub struct NetWorld {
    channel: Channel,
    plan: CoveragePlan,
    macs: Vec<DcfMac>,
    phys: Vec<Transceiver>,
    rngs: Vec<SmallRng>,
    app: Vec<AppStats>,
    neighbors: Vec<Vec<usize>>,
    params: Dot11Params,
    data_bytes: u32,
    traffic: TrafficModel,
    record_delays: bool,
    measured: usize,
    next_signal: u64,
    faults: Option<FaultState>,
    trace: Option<Vec<TraceEntry>>,
    /// Structured trace recorder, attached by [`NetWorld::attach_recorder`].
    /// Observation only: recording consumes no randomness and schedules
    /// nothing, so an attached recorder leaves runs byte-identical (the
    /// golden ring-hash battery enforces this).
    #[cfg(feature = "trace")]
    recorder: Option<RingTrace>,
    /// Event-queue capacity hint applied at [`NetWorld::prime`] time (the
    /// expected steady-state event population, sized at build).
    expected_events: usize,
    /// Reusable wave-target buffer: the event handler copies a wave's
    /// covered slice here before walking it (isolating the borrow from the
    /// MAC callbacks), so the steady state performs no allocation.
    scratch: Vec<NodeId>,
}

impl NetWorld {
    /// Builds the world for `topology` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is empty or the fault plan is invalid for it.
    pub fn build(topology: &Topology, config: &SimConfig) -> Self {
        assert!(!topology.is_empty(), "cannot simulate an empty topology");
        let channel = Channel::new(
            topology.positions.clone(),
            topology.range,
            config.params.propagation_delay,
        )
        .expect("topology range must be valid");
        let n = topology.len();
        let macs = (0..n)
            .map(|i| {
                DcfMac::new(
                    NodeId(i),
                    config.scheme,
                    config.params.clone(),
                    config.mac.clone(),
                )
            })
            .collect();
        let phys = (0..n).map(|_| Transceiver::new(config.reception)).collect();
        let rngs = (0..n).map(|i| stream_rng(config.seed, i as u64)).collect();
        let plan = CoveragePlan::new(&channel, config.beamwidth);
        // Traffic adjacency via the plan's grid (O(n · density)), replacing
        // the O(n²) `Topology::adjacency` scan; the strict `d² ≤ R²`
        // predicate and ascending order are preserved bit for bit.
        let neighbors = {
            let mut adj = Vec::with_capacity(n);
            let mut row: Vec<NodeId> = Vec::new();
            for i in 0..n {
                plan.adjacency_into(NodeId(i), &mut row);
                adj.push(row.iter().map(|id| id.0).collect());
            }
            adj
        };
        // Expected steady-state event population: per handshake a node puts
        // 4 frames on the air, each costing one TxEnd plus one batched
        // WaveStart/WaveEnd pair, with roughly one armed MAC timer per node
        // on top. Reserving this up front keeps the event queue from
        // re-growing mid-run.
        let expected_events = n * (1 + 4 * 3);
        // Fault injection is opt-in per run: a trivial plan compiles to no
        // state at all, so the perfect-channel path (and its RNG stream
        // consumption) is untouched and golden traces stay byte-identical.
        let faults = if config.fault.is_trivial() {
            None
        } else {
            let compiled = config
                .fault
                .compile(n)
                .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
            let fault_master = derive_seed(config.seed, FAULT_STREAM_SALT);
            let fault_rngs = (0..n).map(|i| stream_rng(fault_master, i as u64)).collect();
            Some(FaultState {
                compiled,
                rngs: fault_rngs,
            })
        };
        NetWorld {
            channel,
            plan,
            macs,
            phys,
            rngs,
            app: vec![AppStats::default(); n],
            neighbors,
            params: config.params.clone(),
            data_bytes: config.data_bytes,
            traffic: config.traffic,
            record_delays: config.record_delays,
            measured: topology.measured,
            next_signal: 0,
            faults,
            trace: None,
            #[cfg(feature = "trace")]
            recorder: None,
            expected_events,
            scratch: Vec::with_capacity(n),
        }
    }

    /// Starts recording every transmission into an in-memory trace
    /// (intended for tests and debugging, not for long measurement runs).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded transmissions, if tracing was enabled.
    pub fn trace(&self) -> Option<&[TraceEntry]> {
        self.trace.as_deref()
    }

    /// Attaches a structured trace recorder; subsequent MAC/PHY activity is
    /// pushed into it as typed [`TraceRecord`]s.
    #[cfg(feature = "trace")] // audit-allow(gate-symmetry): signature needs the gated RingTrace type; callers gate themselves
    pub fn attach_recorder(&mut self, recorder: RingTrace) {
        self.recorder = Some(recorder);
    }

    /// Detaches and returns the structured trace recorder, if attached.
    #[cfg(feature = "trace")] // audit-allow(gate-symmetry): signature needs the gated RingTrace type; callers gate themselves
    pub fn take_recorder(&mut self) -> Option<RingTrace> {
        self.recorder.take()
    }

    /// The attached structured trace recorder, if any.
    #[cfg(feature = "trace")] // audit-allow(gate-symmetry): signature needs the gated RingTrace type; callers gate themselves
    pub fn recorder(&self) -> Option<&RingTrace> {
        self.recorder.as_ref()
    }

    /// Pushes one record into the attached recorder, if any.
    #[cfg(feature = "trace")]
    fn record(&mut self, time: SimTime, node: NodeId, kind: RecordKind) {
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.push(TraceRecord { time, node, kind });
        }
    }

    /// Injects one packet from `src` to `dst` into the MAC, bypassing the
    /// traffic generator — for scripted scenarios and tests.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn enqueue_packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        sched: &mut Scheduler<NetEvent>,
    ) {
        assert!(src.0 < self.macs.len(), "unknown source {src}");
        assert!(dst.0 < self.macs.len(), "unknown destination {dst}");
        let seq = self.app[src.0].next_seq;
        self.app[src.0].next_seq += 1;
        let now = sched.now();
        self.with_mac(src, sched, |mac, ctx| {
            mac.enqueue(DataPacket::new(seq, src, dst, bytes, now), ctx);
        });
    }

    /// Seeds initial traffic according to the traffic model: saturated
    /// sources get their first packet immediately (and are refilled
    /// forever); Poisson sources get their first arrival scheduled.
    pub fn prime(&mut self, sched: &mut Scheduler<NetEvent>) {
        // panic-path: per-node vectors are all sized to the node count at
        // build time, and node ids come from the topology/coverage plan, so
        // id-indexed access is infallible.
        sched.reserve(self.expected_events);
        match self.traffic {
            TrafficModel::Saturated => {
                for i in 0..self.macs.len() {
                    self.refill(NodeId(i), sched);
                }
            }
            TrafficModel::Poisson {
                packets_per_sec, ..
            } => {
                for i in 0..self.macs.len() {
                    if !self.neighbors[i].is_empty() {
                        let dt = exp_interval(&mut self.rngs[i], packets_per_sec);
                        sched.schedule_in(dt, NetEvent::Arrival { node: NodeId(i) });
                    }
                }
            }
            TrafficModel::Manual => {}
        }
    }

    /// Zeroes all MAC counters and application stats (end of warm-up).
    pub fn reset_counters(&mut self) {
        for mac in &mut self.macs {
            mac.reset_counters();
        }
        for app in &mut self.app {
            app.delivered = 0;
            app.completed = 0;
            app.dropped = 0;
            app.queue_drops = 0;
            app.fer_losses = 0;
            app.outage_losses = 0;
            app.delay_samples.clear();
            app.airtime = AirtimeBreakdown::default();
        }
    }

    /// The per-node MACs (for result collection).
    pub fn macs(&self) -> &[DcfMac] {
        &self.macs
    }

    /// The per-node application stats.
    pub fn app_stats(&self) -> &[AppStats] {
        &self.app
    }

    /// Number of leading nodes inside the measurement region.
    pub fn measured(&self) -> usize {
        self.measured
    }

    /// The per-node transceivers (read-only; used by the runtime invariant
    /// auditors to cross-check PHY state against the event stream).
    pub fn transceivers(&self) -> &[Transceiver] {
        &self.phys
    }

    /// The PHY/MAC timing parameters in force.
    pub fn params(&self) -> &Dot11Params {
        &self.params
    }

    /// Dispatches a MAC callback for `node` with a fully wired context.
    fn with_mac(
        &mut self,
        node: NodeId,
        sched: &mut Scheduler<NetEvent>,
        f: impl FnOnce(&mut DcfMac, &mut Ctx<'_>),
    ) {
        // panic-path: per-node vectors (macs/phys/rngs/app) are all sized to
        // the node count at build time and `node` comes from the event
        // stream, which only ever carries built node ids.
        // Mute is decided at the instant the MAC acts: if the node's radio
        // is out of service now, any frame it puts on the air this instant
        // reaches nobody (the MAC itself keeps running and will time out
        // through its normal retry path).
        let muted = match &self.faults {
            Some(f) => f.compiled.in_outage(node, sched.now()),
            None => false,
        };
        let NetWorld {
            channel,
            macs,
            phys,
            rngs,
            app,
            params,
            next_signal,
            trace,
            #[cfg(feature = "trace")]
            recorder,
            record_delays,
            ..
        } = self;
        let mut ctx = Ctx {
            node,
            sched,
            phy: &mut phys[node.0],
            channel,
            params,
            rng: &mut rngs[node.0],
            next_signal,
            app: &mut app[node.0],
            trace,
            #[cfg(feature = "trace")]
            recorder,
            record_delays: *record_delays,
            muted,
        };
        f(&mut macs[node.0], &mut ctx);
    }

    /// Decides the fate of a frame the PHY decoded successfully at `dst`,
    /// applying outage deafness first (a dead radio decodes nothing, no
    /// randomness involved) and then the link's frame error rate, drawn
    /// from the receiver's dedicated fault stream.
    fn fault_verdict(
        &mut self,
        src: NodeId,
        dst: NodeId,
        frame: &Frame,
        now: SimTime,
    ) -> FaultVerdict {
        // panic-path: fault rngs are sized to the node count when the fault
        // state is built, so `dst`-indexed access is infallible.
        let Some(state) = self.faults.as_mut() else {
            return FaultVerdict::Deliver;
        };
        // The frame occupied the receiver over [now - airtime, now].
        let start = now - self.params.frame_airtime(frame);
        if state.compiled.outage_overlaps(dst, start, now) {
            return FaultVerdict::Outage;
        }
        let fer = state.compiled.fer(src, dst);
        if fer > 0.0 && state.rngs[dst.0].random::<f64>() < fer {
            return FaultVerdict::Corrupt;
        }
        FaultVerdict::Deliver
    }

    /// Keeps a saturated node's MAC backlogged with fresh packets to random
    /// neighbours.
    fn refill(&mut self, node: NodeId, sched: &mut Scheduler<NetEvent>) {
        // panic-path: per-node vectors are sized to the node count at build,
        // so `node`-indexed access is infallible.
        if self.traffic != TrafficModel::Saturated || self.macs[node.0].has_backlog() {
            return;
        }
        if self.neighbors[node.0].is_empty() {
            return; // isolated node: nothing to send to
        }
        let dst = self.pick_neighbor(node);
        let seq = self.app[node.0].next_seq;
        self.app[node.0].next_seq += 1;
        let bytes = self.data_bytes;
        let now = sched.now();
        self.with_mac(node, sched, |mac, ctx| {
            mac.enqueue(DataPacket::new(seq, node, dst, bytes, now), ctx);
        });
    }

    /// One Poisson arrival at `node`: enqueue (or drop at a full queue)
    /// and schedule the next arrival.
    fn poisson_arrival(&mut self, node: NodeId, sched: &mut Scheduler<NetEvent>) {
        // panic-path: per-node vectors are sized to the node count at build,
        // so `node`-indexed access is infallible.
        let TrafficModel::Poisson {
            packets_per_sec,
            max_queue,
        } = self.traffic
        else {
            return; // stale event after a model change; ignore
        };
        if !self.neighbors[node.0].is_empty() {
            if self.macs[node.0].queue_len() < max_queue {
                let dst = self.pick_neighbor(node);
                let seq = self.app[node.0].next_seq;
                self.app[node.0].next_seq += 1;
                let bytes = self.data_bytes;
                let now = sched.now();
                self.with_mac(node, sched, |mac, ctx| {
                    mac.enqueue(DataPacket::new(seq, node, dst, bytes, now), ctx);
                });
            } else {
                self.app[node.0].queue_drops += 1;
            }
            let dt = exp_interval(&mut self.rngs[node.0], packets_per_sec);
            sched.schedule_in(dt, NetEvent::Arrival { node });
        }
    }

    /// Picks a uniformly random neighbour of `node`.
    ///
    /// panic-path: callers check `neighbors[node]` is non-empty, so the
    /// range is never empty and the picked index is always in bounds.
    fn pick_neighbor(&mut self, node: NodeId) -> NodeId {
        let pick = self.rngs[node.0].random_range(0..self.neighbors[node.0].len());
        NodeId(self.neighbors[node.0][pick])
    }

    /// Receivers covered by a wave from `src` (aimed at `aim` when
    /// `directional`), in ascending id order — the exact set the event
    /// handler walks. Allocates; intended for auditors and tests, not the
    /// hot path.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `aim` is out of range.
    pub fn wave_targets(&self, src: NodeId, aim: NodeId, directional: bool) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.fill_wave_targets(src, aim, directional, &mut out);
        out
    }

    /// Fills `out` with the receivers covered by a transmission from `src`
    /// (aimed at `aim` when `directional`), in ascending id order.
    ///
    /// The grid-backed plan answers every aim — in range or not — with an
    /// O(deg) sector filter of the transmitter's neighbour slice; no
    /// trigonometry beyond the boresight and no allocation beyond `out`'s
    /// capacity.
    fn fill_wave_targets(
        &self,
        src: NodeId,
        aim: NodeId,
        directional: bool,
        out: &mut Vec<NodeId>,
    ) {
        if !directional {
            out.clear();
            out.extend_from_slice(self.plan.neighbors(src));
        } else {
            self.plan.directional_coverage_into(src, aim, out);
        }
    }
}

/// Samples an exponential inter-arrival interval with the given rate
/// (events per second).
fn exp_interval(rng: &mut SmallRng, rate: f64) -> dirca_sim::SimDuration {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let secs = -u.ln() / rate;
    dirca_sim::SimDuration::from_nanos((secs * 1e9).ceil().max(1.0) as u64)
}

impl World for NetWorld {
    type Event = NetEvent;

    fn handle(&mut self, now: SimTime, event: NetEvent, sched: &mut Scheduler<NetEvent>) {
        // panic-path: events only ever carry node ids the world itself
        // built, and every per-node vector is sized to the node count, so
        // id-indexed access throughout dispatch is infallible.
        match event {
            NetEvent::WaveStart {
                src,
                id,
                frame,
                directional,
            } => {
                let end = now + self.params.frame_airtime(&frame);
                let mut wave = std::mem::take(&mut self.scratch);
                self.fill_wave_targets(src, frame.dst, directional, &mut wave);
                for &dst in &wave {
                    let (heading, distance) = self.plan.arrival_geometry(dst, src);
                    let became_busy =
                        self.phys[dst.0].signal_arrives_at(id, heading, distance, end);
                    if became_busy {
                        self.with_mac(dst, sched, |mac, ctx| mac.on_medium_busy(ctx));
                    }
                }
                self.scratch = wave;
            }
            NetEvent::WaveEnd {
                src,
                id,
                frame,
                directional,
            } => {
                let mut wave = std::mem::take(&mut self.scratch);
                self.fill_wave_targets(src, frame.dst, directional, &mut wave);
                for &dst in &wave {
                    let report = self.phys[dst.0].signal_ends(id);
                    if report.delivered {
                        match self.fault_verdict(src, dst, &frame, now) {
                            FaultVerdict::Deliver => {
                                // Mirror what the MAC will do with the frame:
                                // addressed frames are received, overheard
                                // frames load the receiver's NAV.
                                #[cfg(feature = "trace")]
                                self.record(
                                    now,
                                    dst,
                                    if frame.dst == dst {
                                        RecordKind::FrameRx {
                                            kind: frame.kind,
                                            peer: frame.src,
                                        }
                                    } else {
                                        RecordKind::NavSet {
                                            until: now + frame.duration,
                                        }
                                    },
                                );
                                self.with_mac(dst, sched, |mac, ctx| {
                                    mac.on_frame_received(frame, ctx);
                                });
                            }
                            FaultVerdict::Corrupt => {
                                // Channel errors look like noise to the MAC:
                                // same EIFS + retry path as a collision.
                                #[cfg(feature = "trace")]
                                self.record(now, dst, RecordKind::FaultCorrupt);
                                self.app[dst.0].fer_losses += 1;
                                self.with_mac(dst, sched, |mac, ctx| mac.on_rx_corrupted(ctx));
                            }
                            FaultVerdict::Outage => {
                                // A dead decoder produces nothing at all —
                                // no frame, no noise burst, no EIFS.
                                #[cfg(feature = "trace")]
                                self.record(now, dst, RecordKind::FaultOutage);
                                self.app[dst.0].outage_losses += 1;
                            }
                        }
                    } else if report.corrupted {
                        #[cfg(feature = "trace")]
                        self.record(now, dst, RecordKind::RxCorrupted);
                        self.with_mac(dst, sched, |mac, ctx| mac.on_rx_corrupted(ctx));
                    }
                    if report.medium_idle_after {
                        self.with_mac(dst, sched, |mac, ctx| mac.on_medium_idle(ctx));
                    }
                    self.refill(dst, sched);
                }
                self.scratch = wave;
            }
            NetEvent::TxEnd { node } => {
                self.phys[node.0].end_transmit();
                self.with_mac(node, sched, |mac, ctx| mac.on_tx_done(ctx));
                self.refill(node, sched);
            }
            NetEvent::MacTimer { node, kind, gen } => {
                // A cancelled or superseded arming is a state no-op: the MAC
                // discards it by generation, and the traffic refill that
                // follows a live dispatch can have nothing to do (any event
                // that drains a backlog refills it before returning). Skip
                // the context plumbing for those, they are roughly a third
                // of all dispatched events under contention.
                if self.macs[node.0].is_timer_live(kind, gen) {
                    // Only response timeouts and NAV expiry are trace-worthy:
                    // backoff/SIFS firings are the normal cadence, and the
                    // backoff decision itself is captured at draw time.
                    #[cfg(feature = "trace")]
                    match kind {
                        TimerKind::CtsTimeout | TimerKind::DataTimeout | TimerKind::AckTimeout => {
                            self.record(now, node, RecordKind::Timeout { timer: kind });
                        }
                        TimerKind::NavExpire => {
                            self.record(now, node, RecordKind::NavExpire);
                        }
                        TimerKind::Backoff | TimerKind::Sifs => {}
                    }
                    self.with_mac(node, sched, |mac, ctx| mac.on_timer(kind, gen, ctx));
                    self.refill(node, sched);
                }
            }
            NetEvent::Arrival { node } => {
                self.poisson_arrival(node, sched);
            }
        }
    }
}

/// The [`MacContext`] wired to the event queue and the shared channel.
struct Ctx<'a> {
    node: NodeId,
    sched: &'a mut Scheduler<NetEvent>,
    phy: &'a mut Transceiver,
    channel: &'a Channel,
    params: &'a Dot11Params,
    rng: &'a mut SmallRng,
    next_signal: &'a mut u64,
    app: &'a mut AppStats,
    trace: &'a mut Option<Vec<TraceEntry>>,
    #[cfg(feature = "trace")]
    recorder: &'a mut Option<RingTrace>,
    record_delays: bool,
    /// The node's radio is in an outage window at this instant: its
    /// transmissions radiate nothing.
    muted: bool,
}

impl Ctx<'_> {
    /// Pushes one record attributed to this context's node.
    #[cfg(feature = "trace")]
    fn record(&mut self, kind: RecordKind) {
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.push(TraceRecord {
                time: self.sched.now(),
                node: self.node,
                kind,
            });
        }
    }
}

impl MacContext for Ctx<'_> {
    fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn carrier_busy(&self) -> bool {
        self.phy.carrier_busy()
    }

    fn transmit(&mut self, frame: Frame, directional: bool) {
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceEntry {
                time: self.sched.now(),
                frame,
                directional,
            });
        }
        #[cfg(feature = "trace")]
        self.record(RecordKind::FrameTx {
            kind: frame.kind,
            peer: frame.dst,
            bytes: frame.payload_bytes,
            directional,
        });
        let duration = self.params.frame_airtime(&frame);
        match frame.kind {
            FrameKind::Rts => self.app.airtime.rts += duration,
            FrameKind::Cts => self.app.airtime.cts += duration,
            FrameKind::Data => self.app.airtime.data += duration,
            FrameKind::Ack => self.app.airtime.ack += duration,
        }
        self.phy.begin_transmit();
        self.sched
            .schedule_in(duration, NetEvent::TxEnd { node: self.node });

        if self.muted {
            // Out-of-service radio: the MAC went through the motions (the
            // trace and airtime books record its attempt, TxEnd still
            // fires), but no wave reaches any receiver — peers' NAVs go
            // stale and the sender burns through its retry limits.
            return;
        }

        let id = SignalId(*self.next_signal);
        *self.next_signal += 1;
        let prop = self.channel.propagation_delay();
        // Hot path: one batched wave pair per frame. The handler walks the
        // precomputed footprint with cached headings and distances, so heap
        // traffic stays O(1) per transmission regardless of how many
        // receivers the wave covers.
        self.sched.schedule_in(
            prop,
            NetEvent::WaveStart {
                src: self.node,
                id,
                frame,
                directional,
            },
        );
        self.sched.schedule_in(
            duration + prop,
            NetEvent::WaveEnd {
                src: self.node,
                id,
                frame,
                directional,
            },
        );
    }

    fn schedule_timer(
        &mut self,
        kind: TimerKind,
        gen: TimerGeneration,
        delay: dirca_sim::SimDuration,
    ) {
        self.sched.schedule_in(
            delay,
            NetEvent::MacTimer {
                node: self.node,
                kind,
                gen,
            },
        );
    }

    fn draw_backoff_slots(&mut self, cw: u32) -> u32 {
        let slots = self.rng.random_range(0..=cw);
        #[cfg(feature = "trace")]
        self.record(RecordKind::BackoffDraw { cw, slots });
        slots
    }

    fn deliver(&mut self, _frame: &Frame) {
        self.app.delivered += 1;
    }

    fn packet_done(&mut self, packet: DataPacket, success: bool) {
        #[cfg(feature = "trace")]
        self.record(if success {
            RecordKind::PacketAcked
        } else {
            RecordKind::PacketDropped
        });
        if success {
            self.app.completed += 1;
            if self.record_delays {
                let delay = self.sched.now().saturating_duration_since(packet.created);
                self.app.delay_samples.push(delay.as_secs_f64());
            }
        } else {
            self.app.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use dirca_mac::Scheme;
    use dirca_sim::{SimDuration, Simulation};
    use dirca_topology::fixtures;

    fn build(topo: &Topology, scheme: Scheme) -> Simulation<NetWorld> {
        let config = SimConfig::new(scheme).with_seed(1);
        let world = NetWorld::build(topo, &config);
        let mut sim = Simulation::new(world);
        {
            let (world, sched) = sim.world_and_scheduler_mut();
            world.prime(sched);
        }
        sim
    }

    #[test]
    fn priming_schedules_contention() {
        let topo = fixtures::pair(0.5, 1.0);
        let mut sim = build(&topo, Scheme::OrtsOcts);
        assert!(sim.scheduler_mut().pending() > 0, "priming must arm timers");
    }

    #[test]
    fn first_handshake_completes() {
        let topo = fixtures::pair(0.5, 1.0);
        let mut sim = build(&topo, Scheme::OrtsOcts);
        sim.run_until(SimTime::from_millis(100));
        let total_acked: u64 = sim
            .world()
            .macs()
            .iter()
            .map(|m| m.counters().packets_acked)
            .sum();
        assert!(total_acked > 0, "no handshake completed in 100 ms");
    }

    #[test]
    fn saturation_keeps_macs_backlogged() {
        let topo = fixtures::hidden_terminal();
        let mut sim = build(&topo, Scheme::OrtsOcts);
        sim.run_until(SimTime::from_millis(200));
        for mac in sim.world().macs() {
            assert!(mac.has_backlog(), "{} lost its backlog", mac.id());
        }
    }

    #[test]
    fn isolated_node_stays_idle() {
        // One connected pair plus one node far away: the isolated node must
        // generate no traffic and no events beyond priming.
        let mut topo = fixtures::pair(0.5, 1.0);
        topo.positions
            .push(dirca_geometry::Point::new(100.0, 100.0));
        topo.measured = 3;
        let mut sim = build(&topo, Scheme::OrtsOcts);
        sim.run_until(SimTime::from_millis(50));
        let counters = sim.world().macs()[2].counters();
        assert_eq!(counters.rts_tx, 0);
        assert!(!sim.world().macs()[2].has_backlog());
    }

    #[test]
    fn hidden_terminals_cause_data_collisions_then_recover() {
        // In the A—B—C fixture, A and C cannot hear each other; with RTS/CTS
        // active most collisions are avoided but some handshakes still fail.
        // The protocol must keep making progress regardless.
        let topo = fixtures::hidden_terminal();
        let mut sim = build(&topo, Scheme::OrtsOcts);
        sim.run_until(SimTime::from_secs(2));
        let total_acked: u64 = sim
            .world()
            .macs()
            .iter()
            .map(|m| m.counters().packets_acked)
            .sum();
        let total_rts: u64 = sim.world().macs().iter().map(|m| m.counters().rts_tx).sum();
        assert!(
            total_acked > 50,
            "throughput collapsed: {total_acked} acked"
        );
        assert!(total_rts >= total_acked);
    }

    #[test]
    fn reset_counters_clears_everything() {
        let topo = fixtures::pair(0.5, 1.0);
        let mut sim = build(&topo, Scheme::OrtsOcts);
        sim.run_until(SimTime::from_millis(100));
        sim.world_mut().reset_counters();
        for mac in sim.world().macs() {
            assert_eq!(mac.counters().packets_acked, 0);
            assert_eq!(mac.counters().rts_tx, 0);
        }
        for app in sim.world().app_stats() {
            assert_eq!(app.delivered, 0);
        }
    }

    #[test]
    fn app_stats_track_mac_counters() {
        let topo = fixtures::pair(0.5, 1.0);
        let mut sim = build(&topo, Scheme::OrtsOcts);
        sim.run_until(SimTime::from_secs(1));
        let world = sim.world();
        let mac_acked: u64 = world
            .macs()
            .iter()
            .map(|m| m.counters().packets_acked)
            .sum();
        let app_completed: u64 = world.app_stats().iter().map(|a| a.completed).sum();
        assert_eq!(mac_acked, app_completed);
        let mac_delivered: u64 = world
            .macs()
            .iter()
            .map(|m| m.counters().data_delivered)
            .sum();
        let app_delivered: u64 = world.app_stats().iter().map(|a| a.delivered).sum();
        assert_eq!(mac_delivered, app_delivered);
    }

    #[test]
    #[should_panic(expected = "empty topology")]
    fn empty_topology_rejected() {
        let topo = Topology {
            positions: vec![],
            range: 1.0,
            measured: 0,
        };
        let _ = NetWorld::build(&topo, &SimConfig::new(Scheme::OrtsOcts));
    }

    #[test]
    fn directional_signals_reach_only_beam() {
        // DRTS-DCTS on the hidden-terminal line: when A sends a narrow beam
        // to B, C must hear nothing (it is behind B but out of range of A
        // anyway); more interestingly, B beaming to A leaves C silent.
        let topo = fixtures::hidden_terminal();
        let config = SimConfig::new(Scheme::DrtsDcts)
            .with_seed(5)
            .with_beamwidth_degrees(30.0)
            .with_measure(SimDuration::from_millis(500));
        let world = NetWorld::build(&topo, &config);
        let mut sim = Simulation::new(world);
        {
            let (world, sched) = sim.world_and_scheduler_mut();
            world.prime(sched);
        }
        sim.run_until(SimTime::from_secs(1));
        let acked: u64 = sim
            .world()
            .macs()
            .iter()
            .map(|m| m.counters().packets_acked)
            .sum();
        assert!(acked > 0, "directional handshakes must complete");
    }
}
