//! Protocol-aware runtime invariant auditors for [`NetWorld`] (feature
//! `audit`).
//!
//! Each auditor implements [`dirca_sim::audit::Auditor`] and panics with a
//! message prefixed `audit[<name>]:` at the first violation it observes.
//! Install them on a [`Simulation`](dirca_sim::Simulation) *before the
//! first event is processed* — the airtime auditor in particular integrates
//! transmit time from the very start of the run and will (correctly) flag a
//! run it only observed partway.
//!
//! [`NavAuditor`] and [`AirtimeAuditor`] read the world's frame trace, so
//! the world must have [`NetWorld::enable_trace`] switched on.

use dirca_mac::{DcfMac, FrameKind};
use dirca_sim::audit::Auditor;
use dirca_sim::{Scheduler, SimDuration, SimTime};

use crate::world::TraceEntry;
use crate::{NetEvent, NetWorld};

/// The full standard set: causality, NAV consistency, transceiver
/// legality, and airtime conservation.
///
/// The world must have tracing enabled (see the module docs).
pub fn standard_auditors() -> Vec<Box<dyn Auditor<NetWorld>>> {
    vec![
        Box::new(dirca_sim::audit::CausalityAuditor::new()),
        Box::new(NavAuditor::new()),
        Box::new(TransceiverAuditor::new()),
        Box::new(AirtimeAuditor::new()),
    ]
}

fn trace_of(world: &NetWorld, who: &str) -> usize {
    match world.trace() {
        Some(trace) => trace.len(),
        None => panic!("audit[{who}]: NetWorld::enable_trace must be on before auditing"),
    }
}

/// NAV consistency: no node ever initiates an RTS while its own virtual
/// carrier sense says the medium is reserved.
///
/// The sender-side contention path unconditionally defers to the NAV
/// ([`DcfMac`] refuses to arm backoff while it is busy), so an RTS on the
/// air during a reservation means the MAC's deferral logic is broken.
/// SIFS-spaced responses (CTS, DATA, ACK) are exempt: they happen inside
/// the reservation their own handshake established, and IEEE 802.11
/// explicitly excludes them from virtual carrier sense.
#[derive(Debug, Default)]
pub struct NavAuditor {
    seen: usize,
}

impl NavAuditor {
    /// Creates the auditor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks one trace entry against the transmitting MAC's NAV, panicking
    /// on a violation. Exposed so tests can exercise the rule on corrupted
    /// state directly.
    pub fn check_entry(entry: &TraceEntry, mac: &DcfMac) {
        if entry.frame.kind == FrameKind::Rts && mac.nav().is_busy(entry.time) {
            panic!(
                "audit[nav]: {} transmitted an RTS at {} while its NAV was reserved until {}",
                mac.id(),
                entry.time,
                mac.nav().until()
            );
        }
    }
}

impl Auditor<NetWorld> for NavAuditor {
    fn after_event(&mut self, _now: SimTime, world: &NetWorld, _sched: &Scheduler<NetEvent>) {
        let len = trace_of(world, "nav");
        if let Some(trace) = world.trace() {
            for entry in &trace[self.seen..] {
                Self::check_entry(entry, &world.macs()[entry.frame.src.0]);
            }
        }
        self.seen = len;
    }
}

/// Transceiver state-machine legality: at every covered receiver a
/// `WaveEnd` trailing edge matches an earlier `WaveStart` leading edge,
/// `TxEnd` arrives exactly when the frame's airtime elapses and only while
/// the PHY is transmitting, and no node starts a second transmission while
/// its first is still on the air (half-duplex).
///
/// Waves are expanded per receiver through [`NetWorld::wave_targets`] —
/// the same footprint the event handler walks — so the auditor tracks the
/// exact `(receiver, signal)` pairs the world delivers edges to.
#[derive(Debug, Default)]
pub struct TransceiverAuditor {
    /// `(dst, signal id)` pairs whose leading edge arrived but whose
    /// trailing edge has not.
    in_flight: std::collections::BTreeSet<(usize, u64)>,
    /// Scheduled end of each node's transmission in progress.
    tx_until: Vec<Option<SimTime>>,
    /// Node whose `TxEnd` is being dispatched (set in `before_event`,
    /// resolved in `after_event`).
    ending: Option<usize>,
    seen: usize,
}

impl TransceiverAuditor {
    /// Creates the auditor.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_nodes(&mut self, world: &NetWorld) {
        if self.tx_until.len() < world.transceivers().len() {
            self.tx_until.resize(world.transceivers().len(), None);
        }
    }
}

impl Auditor<NetWorld> for TransceiverAuditor {
    fn before_event(&mut self, now: SimTime, event: &NetEvent, world: &NetWorld) {
        self.ensure_nodes(world);
        match event {
            NetEvent::WaveStart {
                src,
                id,
                frame,
                directional,
            } => {
                for dst in world.wave_targets(*src, frame.dst, *directional) {
                    assert!(
                        self.in_flight.insert((dst.0, id.0)),
                        "audit[transceiver]: duplicate leading edge of signal {id:?} at {dst} \
                         ({now})"
                    );
                }
            }
            NetEvent::WaveEnd {
                src,
                id,
                frame,
                directional,
            } => {
                for dst in world.wave_targets(*src, frame.dst, *directional) {
                    assert!(
                        self.in_flight.remove(&(dst.0, id.0)),
                        "audit[transceiver]: trailing edge of signal {id:?} at {dst} without a \
                         leading edge ({now})"
                    );
                }
            }
            NetEvent::TxEnd { node } => {
                let until = self.tx_until[node.0];
                assert!(
                    until == Some(now),
                    "audit[transceiver]: TxEnd for {node} at {now} but its transmission ends at \
                     {until:?}"
                );
                assert!(
                    world.transceivers()[node.0].is_transmitting(),
                    "audit[transceiver]: TxEnd for {node} at {now} while its PHY is not \
                     transmitting"
                );
                self.ending = Some(node.0);
            }
            NetEvent::MacTimer { .. } | NetEvent::Arrival { .. } => {}
        }
    }

    fn after_event(&mut self, now: SimTime, world: &NetWorld, _sched: &Scheduler<NetEvent>) {
        if let Some(node) = self.ending.take() {
            assert!(
                !world.transceivers()[node].is_transmitting(),
                "audit[transceiver]: node {node} still transmitting after its TxEnd ({now})"
            );
            self.tx_until[node] = None;
        }
        // New transmissions appear in the trace at the instant they start.
        if let Some(trace) = world.trace() {
            for entry in &trace[self.seen..] {
                let src = entry.frame.src.0;
                assert!(
                    self.tx_until[src].is_none(),
                    "audit[transceiver]: {} began a transmission at {} while one was already \
                     on the air until {:?} (half-duplex violation)",
                    entry.frame.src,
                    entry.time,
                    self.tx_until[src]
                );
                self.tx_until[src] = Some(entry.time + world.params().frame_airtime(&entry.frame));
            }
            self.seen = trace.len();
        }
        // The shadow state and the PHY must agree between events.
        for (n, phy) in world.transceivers().iter().enumerate() {
            let shadow = self.tx_until[n].is_some();
            assert!(
                shadow == phy.is_transmitting(),
                "audit[transceiver]: node {n} shadow transmit state {shadow} disagrees with \
                 the PHY at {now}"
            );
        }
    }
}

/// Per-node airtime conservation: integrated over the whole run, the time
/// each PHY reports spending in transmission plus the time it reports idle
/// must equal the elapsed simulated time, and the transmit share must
/// exactly equal the summed airtime of the frames the node put on the air
/// (as derived independently from the frame trace and the PHY timing
/// parameters).
///
/// This cross-checks three things that are computed through separate code
/// paths — `TxEnd` scheduling, `frame_airtime`, and the PHY transmit flag —
/// and fires on any disagreement, e.g. a `TxEnd` scheduled with the wrong
/// duration.
#[derive(Debug, Default)]
pub struct AirtimeAuditor {
    last: SimTime,
    busy: Vec<SimDuration>,
    idle: Vec<SimDuration>,
    /// Airtime the trace says each node transmitted.
    declared: Vec<SimDuration>,
    /// Scheduled end of each node's transmission in progress, to discount
    /// the unelapsed tail of an in-flight frame at `finish` time.
    tx_until: Vec<Option<SimTime>>,
    seen: usize,
}

impl AirtimeAuditor {
    /// Creates the auditor.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_nodes(&mut self, world: &NetWorld) {
        let n = world.transceivers().len();
        if self.busy.len() < n {
            self.busy.resize(n, SimDuration::ZERO);
            self.idle.resize(n, SimDuration::ZERO);
            self.declared.resize(n, SimDuration::ZERO);
            self.tx_until.resize(n, None);
        }
    }

    /// Adds the interval since the last observation to each node's busy or
    /// idle account, according to its current PHY state (PHY state only
    /// changes inside event handlers, so it is constant over the interval).
    fn integrate(&mut self, now: SimTime, world: &NetWorld) {
        let dt = now.saturating_duration_since(self.last);
        if dt > SimDuration::ZERO {
            for (n, phy) in world.transceivers().iter().enumerate() {
                if phy.is_transmitting() {
                    self.busy[n] += dt;
                } else {
                    self.idle[n] += dt;
                }
            }
        }
        self.last = now;
    }
}

impl Auditor<NetWorld> for AirtimeAuditor {
    fn before_event(&mut self, now: SimTime, _event: &NetEvent, world: &NetWorld) {
        self.ensure_nodes(world);
        self.integrate(now, world);
    }

    fn after_event(&mut self, _now: SimTime, world: &NetWorld, _sched: &Scheduler<NetEvent>) {
        let len = trace_of(world, "airtime");
        if let Some(trace) = world.trace() {
            for entry in &trace[self.seen..] {
                let src = entry.frame.src.0;
                let airtime = world.params().frame_airtime(&entry.frame);
                self.declared[src] += airtime;
                self.tx_until[src] = Some(entry.time + airtime);
            }
        }
        self.seen = len;
    }

    fn finish(&mut self, now: SimTime, world: &NetWorld) {
        self.ensure_nodes(world);
        self.integrate(now, world);
        for n in 0..self.busy.len() {
            let elapsed = now.saturating_duration_since(SimTime::ZERO);
            assert!(
                self.busy[n] + self.idle[n] == elapsed,
                "audit[airtime]: node {n} busy {:?} + idle {:?} != elapsed {elapsed:?}",
                self.busy[n],
                self.idle[n]
            );
            // Discount the tail of a frame still on the air at `now`.
            let mut declared = self.declared[n];
            if let Some(until) = self.tx_until[n] {
                declared -= until.saturating_duration_since(now);
            }
            assert!(
                self.busy[n] == declared,
                "audit[airtime]: node {n} PHY-integrated transmit time {:?} != trace-declared \
                 airtime {declared:?}",
                self.busy[n]
            );
        }
    }
}
