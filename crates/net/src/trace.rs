//! Traced runs and metrics snapshots (compiled only with the `trace`
//! feature).
//!
//! [`run_traced`] is [`crate::run`] with a structured recorder attached:
//! the returned [`RingTrace`] holds the run's last `capacity` records, and
//! the returned [`RunResult`] is byte-identical to an untraced run's — the
//! golden ring-hash tests enforce that attaching the recorder perturbs
//! nothing.
//!
//! [`metrics_snapshot`] folds a [`RunResult`] into a
//! [`MetricsRegistry`]: the statically-named counters/gauges/histograms
//! that the experiment harness embeds in its report JSON next to the
//! per-cell results.

pub use dirca_trace::{Json, MetricsRegistry, RecordKind, RingTrace, TraceRecord};

use dirca_sim::{SimTime, Simulation, Watchdog};
use dirca_topology::Topology;

use crate::{NetWorld, RunResult, SimConfig};

/// Like [`crate::run`], but records MAC/PHY activity into a ring buffer of
/// `capacity` records attached for the whole run (warm-up included, so the
/// recorder's presence is uniform across the run).
///
/// # Panics
///
/// Panics on the same invalid inputs as [`crate::run`], or if `capacity`
/// is zero.
pub fn run_traced(
    topology: &Topology,
    config: &SimConfig,
    capacity: usize,
) -> (RunResult, RingTrace) {
    let mut world = NetWorld::build(topology, config);
    world.attach_recorder(RingTrace::with_capacity(capacity));
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    let warmup_end = SimTime::ZERO + config.warmup;
    sim.run_until(warmup_end);
    sim.world_mut().reset_counters();
    let end = warmup_end + config.measure;
    sim.run_until(end);
    let events = sim.events_processed();
    let trace = sim
        .world_mut()
        .take_recorder()
        .expect("recorder was attached above");
    (
        RunResult::collect(sim.into_world(), config.measure, events),
        trace,
    )
}

/// Folds `result` into a metrics registry: handshake counters, airtime and
/// throughput gauges, and distribution histograms.
///
/// Pass the `watchdog` the run executed under (if any) to get budget-margin
/// gauges — how much of the event/sim-time budget the run left unused.
pub fn metrics_snapshot(result: &RunResult, watchdog: Option<Watchdog>) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    let c = result.aggregate_counters();
    m.add_counter("rts_tx", c.rts_tx);
    m.add_counter("cts_tx", c.cts_tx);
    m.add_counter("data_tx", c.data_tx);
    m.add_counter("ack_tx", c.ack_tx);
    m.add_counter("packets_acked", c.packets_acked);
    m.add_counter("packets_dropped", c.packets_dropped);
    m.add_counter("cts_timeouts", c.cts_timeouts);
    m.add_counter("data_timeouts", c.data_timeouts);
    m.add_counter("ack_timeouts", c.ack_timeouts);
    m.add_counter("duplicates_dropped", c.duplicates_dropped);
    m.add_counter("queue_drops", result.queue_drops());
    m.add_counter("fer_losses", result.fer_losses());
    m.add_counter("outage_losses", result.outage_losses());
    m.add_counter("events_processed", result.events_processed());
    m.add_counter("queue_depth_total", result.total_backlog());

    let airtime = result.airtime_breakdown();
    m.set_gauge("airtime_rts_s", airtime.rts.as_secs_f64());
    m.set_gauge("airtime_cts_s", airtime.cts.as_secs_f64());
    m.set_gauge("airtime_data_s", airtime.data.as_secs_f64());
    m.set_gauge("airtime_ack_s", airtime.ack.as_secs_f64());
    m.set_gauge("airtime_control_s", airtime.control().as_secs_f64());
    m.set_gauge("airtime_total_s", airtime.total().as_secs_f64());
    m.set_gauge(
        "aggregate_throughput_bps",
        result.aggregate_throughput_bps(),
    );
    if let Some(ratio) = result.collision_ratio() {
        m.set_gauge("collision_ratio", ratio);
    }
    if let Some(delay) = result.mean_delay() {
        m.set_gauge("mean_mac_delay_ms", delay.as_secs_f64() * 1e3);
    }
    if let Some(w) = watchdog {
        m.set_gauge(
            "watchdog_event_margin",
            w.max_events.saturating_sub(result.events_processed()) as f64,
        );
    }

    // Per-node throughput spread: 0..2.5 Mbit/s covers the 2 Mbit/s PHY
    // with headroom; 25 bins give 100 kbit/s resolution.
    for bps in result.node_throughputs_bps() {
        m.record_histogram("node_throughput_bps", 0.0, 2.5e6, 25, bps);
    }
    // End-to-end delays (only present when the run recorded them).
    for delay in result.delay_samples() {
        m.record_histogram("delay_s", 0.0, 1.0, 50, delay);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_mac::Scheme;
    use dirca_sim::SimDuration;
    use dirca_topology::fixtures;

    fn quick(scheme: Scheme) -> SimConfig {
        SimConfig::new(scheme)
            .with_seed(42)
            .with_warmup(SimDuration::from_millis(50))
            .with_measure(SimDuration::from_millis(500))
    }

    #[test]
    fn traced_run_matches_untraced_result() {
        let topo = fixtures::hidden_terminal();
        let config = quick(Scheme::OrtsOcts);
        let plain = crate::run(&topo, &config);
        let (traced, trace) = run_traced(&topo, &config, 1 << 14);
        assert_eq!(plain.packets_acked(), traced.packets_acked());
        assert_eq!(plain.events_processed(), traced.events_processed());
        assert!(!trace.is_empty(), "a contended run must produce records");
    }

    #[test]
    fn trace_contains_full_handshakes() {
        let topo = fixtures::pair(0.5, 1.0);
        let (_, trace) = run_traced(&topo, &quick(Scheme::OrtsOcts), 1 << 14);
        let mut tx = 0u64;
        let mut rx = 0u64;
        let mut corrupted = 0u64;
        let mut acked = 0u64;
        for r in trace.iter() {
            match r.kind {
                RecordKind::FrameTx { .. } => tx += 1,
                RecordKind::FrameRx { .. } => rx += 1,
                RecordKind::RxCorrupted => corrupted += 1,
                RecordKind::PacketAcked => acked += 1,
                _ => {}
            }
        }
        assert!(
            tx > 0 && rx > 0 && acked > 0,
            "tx={tx} rx={rx} acked={acked}"
        );
        // Nothing is decoded that was never sent, and on a mostly-clean
        // pair the vast majority of frames do get decoded. (The gap is
        // simultaneous transmissions: a busy or transmitting receiver
        // decodes nothing, sometimes without even a corruption report.)
        assert!(
            rx + corrupted <= tx,
            "rx={rx} corrupted={corrupted} tx={tx}"
        );
        assert!(rx * 10 >= tx * 9, "too many lost frames: rx={rx} tx={tx}");
    }

    #[test]
    fn every_record_round_trips_through_the_schema() {
        let topo = fixtures::hidden_terminal();
        let (_, trace) = run_traced(&topo, &quick(Scheme::DrtsDcts), 1 << 14);
        for line in trace.to_jsonl().lines() {
            let parsed = Json::parse(line).expect("trace lines are valid JSON");
            let record = TraceRecord::from_json(&parsed).expect("trace lines match the schema");
            assert_eq!(record.to_json(), line, "encode(decode(x)) != x");
        }
    }

    #[test]
    fn metrics_snapshot_is_consistent_with_result() {
        let topo = fixtures::hidden_terminal();
        let config = quick(Scheme::OrtsOcts);
        let result = crate::run(&topo, &config);
        let m = metrics_snapshot(&result, Some(Watchdog::max_events(10_000_000)));
        assert_eq!(m.counter("packets_acked"), Some(result.packets_acked()));
        assert_eq!(
            m.counter("events_processed"),
            Some(result.events_processed())
        );
        let agg = m.gauge("aggregate_throughput_bps").expect("gauge set");
        assert!((agg - result.aggregate_throughput_bps()).abs() < 1e-9);
        let margin = m.gauge("watchdog_event_margin").expect("margin set");
        assert!((margin - (10_000_000 - result.events_processed()) as f64).abs() < 1e-9);
        let h = m.histogram("node_throughput_bps").expect("histogram set");
        assert_eq!(
            h.total() + h.underflow() + h.overflow(),
            result.node_throughputs_bps().len() as u64
        );
        // The snapshot must render to parseable JSON.
        assert!(Json::parse(&m.to_json()).is_ok());
    }

    #[test]
    fn ring_capacity_bounds_memory_not_correctness() {
        let topo = fixtures::hidden_terminal();
        let config = quick(Scheme::OrtsOcts);
        let (full_result, full) = run_traced(&topo, &config, 1 << 16);
        let (small_result, small) = run_traced(&topo, &config, 64);
        assert_eq!(
            full_result.events_processed(),
            small_result.events_processed(),
            "ring capacity must not perturb the run"
        );
        assert_eq!(small.len(), 64);
        assert!(small.overwritten() > 0);
        // The small ring holds exactly the tail of the full trace.
        let all: Vec<_> = full.iter().copied().collect();
        let tail = &all[all.len() - 64..];
        let held: Vec<_> = small.iter().copied().collect();
        assert_eq!(held, tail);
    }
}
