//! Experiment configuration.

use dirca_geometry::Beamwidth;
use dirca_mac::{Dot11Params, MacConfig, Scheme};
use dirca_radio::{FaultPlan, ReceptionMode};
use dirca_sim::SimDuration;

/// How each node's traffic source behaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Always backlogged (the paper's experiments): a fresh packet to a
    /// random neighbour whenever the MAC runs dry.
    Saturated,
    /// Poisson arrivals at the given per-node rate, each to a random
    /// neighbour. Arrivals beyond `max_queue` waiting packets are dropped
    /// at the source (counted in [`crate::AppStats::queue_drops`]).
    Poisson {
        /// Mean packet arrivals per second per node.
        packets_per_sec: f64,
        /// Source queue capacity (excluding the packet in service).
        max_queue: usize,
    },
    /// No generator: packets are injected manually through
    /// [`crate::NetWorld::enqueue_packet`].
    Manual,
}

/// All knobs of one simulation run.
///
/// Build with [`SimConfig::new`] and the `with_*` methods (consuming
/// builder style):
///
/// ```
/// use dirca_mac::Scheme;
/// use dirca_net::SimConfig;
/// use dirca_sim::SimDuration;
///
/// let cfg = SimConfig::new(Scheme::DrtsDcts)
///     .with_beamwidth_degrees(30.0)
///     .with_seed(7)
///     .with_measure(SimDuration::from_secs(5));
/// assert_eq!(cfg.scheme, Scheme::DrtsDcts);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Which collision-avoidance scheme the MACs run.
    pub scheme: Scheme,
    /// Beamwidth used for directional transmissions.
    pub beamwidth: Beamwidth,
    /// Receive-chain model (the paper's baseline is omni reception).
    pub reception: ReceptionMode,
    /// PHY/MAC timing parameters.
    pub params: Dot11Params,
    /// MAC behaviour knobs (retry limits, EIFS, NAV handling).
    pub mac: MacConfig,
    /// Size of generated data packets in bytes.
    pub data_bytes: u32,
    /// Traffic source model (the paper's experiments are saturated).
    pub traffic: TrafficModel,
    /// Master seed; all node streams derive from it.
    pub seed: u64,
    /// Record every delivered packet's end-to-end delay into the node
    /// reports (costs memory on long runs; used for tail-latency studies).
    pub record_delays: bool,
    /// Warm-up window excluded from the measurement.
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Channel imperfections injected into the run. The default (trivial)
    /// plan leaves the simulation byte-identical to a perfect channel.
    pub fault: FaultPlan,
}

impl SimConfig {
    /// A configuration with the paper's defaults: Table 1 PHY parameters,
    /// 90° beams, omni reception, saturated 1460-byte CBR, 0.5 s warm-up,
    /// 10 s measurement.
    pub fn new(scheme: Scheme) -> Self {
        SimConfig {
            scheme,
            beamwidth: Beamwidth::from_degrees(90.0).expect("static beamwidth"),
            reception: ReceptionMode::Omni,
            params: Dot11Params::dsss_2mbps(),
            mac: MacConfig::default(),
            data_bytes: 1460,
            traffic: TrafficModel::Saturated,
            seed: 0,
            record_delays: false,
            warmup: SimDuration::from_millis(500),
            measure: SimDuration::from_secs(10),
            fault: FaultPlan::default(),
        }
    }

    /// Sets the beamwidth for directional transmissions.
    pub fn with_beamwidth(mut self, beamwidth: Beamwidth) -> Self {
        self.beamwidth = beamwidth;
        self
    }

    /// Sets the beamwidth in degrees.
    ///
    /// # Panics
    ///
    /// Panics if `degrees` is outside `(0, 360]`.
    pub fn with_beamwidth_degrees(self, degrees: f64) -> Self {
        self.with_beamwidth(Beamwidth::from_degrees(degrees).expect("valid beamwidth degrees"))
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the warm-up duration.
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the measurement duration.
    pub fn with_measure(mut self, measure: SimDuration) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the reception mode (directional reception is the extension
    /// experiment).
    pub fn with_reception(mut self, reception: ReceptionMode) -> Self {
        self.reception = reception;
        self
    }

    /// Sets the generated packet size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_data_bytes(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "data packets must be non-empty");
        self.data_bytes = bytes;
        self
    }

    /// Sets the traffic model.
    ///
    /// # Panics
    ///
    /// Panics if a Poisson rate is not positive and finite.
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        if let TrafficModel::Poisson {
            packets_per_sec, ..
        } = traffic
        {
            assert!(
                packets_per_sec.is_finite() && packets_per_sec > 0.0,
                "Poisson rate must be positive, got {packets_per_sec}"
            );
        }
        self.traffic = traffic;
        self
    }

    /// Sets the fault-injection plan. Validity against the topology is
    /// checked when the world is built.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::new(Scheme::OrtsOcts);
        assert_eq!(c.data_bytes, 1460);
        assert_eq!(c.traffic, TrafficModel::Saturated);
        assert_eq!(c.params, Dot11Params::dsss_2mbps());
        assert_eq!(c.reception, ReceptionMode::Omni);
        assert!(c.fault.is_trivial(), "default channel must be perfect");
    }

    #[test]
    fn fault_builder_installs_plan() {
        let c = SimConfig::new(Scheme::OrtsOcts)
            .with_fault(FaultPlan::default().with_frame_error_rate(0.1));
        assert!(!c.fault.is_trivial());
        assert_eq!(c.fault.frame_error_rate, 0.1);
    }

    #[test]
    fn traffic_builder_validates_rate() {
        let c = SimConfig::new(Scheme::OrtsOcts).with_traffic(TrafficModel::Poisson {
            packets_per_sec: 10.0,
            max_queue: 8,
        });
        assert!(matches!(c.traffic, TrafficModel::Poisson { .. }));
    }

    #[test]
    #[should_panic(expected = "Poisson rate")]
    fn zero_rate_rejected() {
        let _ = SimConfig::new(Scheme::OrtsOcts).with_traffic(TrafficModel::Poisson {
            packets_per_sec: 0.0,
            max_queue: 8,
        });
    }

    #[test]
    fn builder_methods_chain() {
        let c = SimConfig::new(Scheme::DrtsOcts)
            .with_beamwidth_degrees(15.0)
            .with_seed(99)
            .with_warmup(SimDuration::from_millis(1))
            .with_measure(SimDuration::from_millis(2))
            .with_data_bytes(512);
        assert!((c.beamwidth.degrees() - 15.0).abs() < 1e-9);
        assert_eq!(c.seed, 99);
        assert_eq!(c.warmup, SimDuration::from_millis(1));
        assert_eq!(c.measure, SimDuration::from_millis(2));
        assert_eq!(c.data_bytes, 512);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_data_bytes_rejected() {
        let _ = SimConfig::new(Scheme::OrtsOcts).with_data_bytes(0);
    }

    #[test]
    #[should_panic(expected = "valid beamwidth")]
    fn bad_beamwidth_rejected() {
        let _ = SimConfig::new(Scheme::OrtsOcts).with_beamwidth_degrees(0.0);
    }
}
