//! Result collection and aggregate metrics.

use dirca_mac::MacCounters;
use dirca_sim::SimDuration;

use crate::{AirtimeBreakdown, NetWorld};

/// One node's measured statistics.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// Whether the node lies in the measurement region (the innermost `N`
    /// nodes of the ring topology).
    pub measured: bool,
    /// The node's MAC counters over the measurement window.
    pub counters: MacCounters,
    /// Poisson arrivals dropped at the source because the queue was full.
    pub queue_drops: u64,
    /// Receptions lost at this node to the injected frame error rate.
    pub fer_losses: u64,
    /// Receptions lost at this node to its injected outage windows.
    pub outage_losses: u64,
    /// Recorded end-to-end delays in seconds (empty unless
    /// `SimConfig::record_delays` was set).
    pub delay_samples: Vec<f64>,
    /// Transmit airtime by frame kind.
    pub airtime: AirtimeBreakdown,
    /// Packets still queued at the MAC when the run ended (end-of-run
    /// queue depth; always the full queue under saturated traffic).
    pub backlog: u64,
}

impl NodeReport {
    /// Sender-side throughput of this node in bits per second.
    pub fn throughput_bps(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.counters.data_acked_bytes as f64 * 8.0 / window.as_secs_f64()
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-node reports, indexed by node id.
    pub nodes: Vec<NodeReport>,
    /// Length of the measurement window.
    pub window: SimDuration,
    /// Total events processed by the run (for determinism checks and
    /// performance accounting).
    events: u64,
}

impl RunResult {
    pub(crate) fn collect(world: NetWorld, window: SimDuration, events: u64) -> Self {
        let measured = world.measured();
        let nodes = world
            .macs()
            .iter()
            .zip(world.app_stats())
            .enumerate()
            .map(|(i, (mac, app))| NodeReport {
                node: i,
                measured: i < measured,
                counters: mac.counters().clone(),
                queue_drops: app.queue_drops,
                fer_losses: app.fer_losses,
                outage_losses: app.outage_losses,
                delay_samples: app.delay_samples.clone(),
                airtime: app.airtime,
                backlog: mac.queue_len() as u64,
            })
            .collect();
        RunResult {
            nodes,
            window,
            events,
        }
    }

    /// Assembles a result from hand-constructed parts — for metric
    /// arithmetic tests and external tooling that replays recorded runs.
    pub fn from_parts(nodes: Vec<NodeReport>, window: SimDuration, events: u64) -> Self {
        RunResult {
            nodes,
            window,
            events,
        }
    }

    /// Reports of the measured (innermost) nodes.
    pub fn measured_nodes(&self) -> impl Iterator<Item = &NodeReport> {
        self.nodes.iter().filter(|n| n.measured)
    }

    /// Total events processed by the run.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Total packets acknowledged by measured nodes (sender side).
    pub fn packets_acked(&self) -> u64 {
        self.measured_nodes()
            .map(|n| n.counters.packets_acked)
            .sum()
    }

    /// Total packets dropped by measured nodes after retries.
    pub fn packets_dropped(&self) -> u64 {
        self.measured_nodes()
            .map(|n| n.counters.packets_dropped)
            .sum()
    }

    /// Aggregate sender-side throughput of the measured nodes, bits/s.
    pub fn aggregate_throughput_bps(&self) -> f64 {
        self.measured_nodes()
            .map(|n| n.throughput_bps(self.window))
            .sum()
    }

    /// Mean sender-side throughput per measured node, bits/s.
    pub fn mean_node_throughput_bps(&self) -> f64 {
        let count = self.measured_nodes().count();
        if count == 0 {
            0.0
        } else {
            self.aggregate_throughput_bps() / count as f64
        }
    }

    /// Per-measured-node throughputs, bits/s (for fairness analysis).
    pub fn node_throughputs_bps(&self) -> Vec<f64> {
        self.measured_nodes()
            .map(|n| n.throughput_bps(self.window))
            .collect()
    }

    /// Mean MAC service delay (head-of-queue to ACK) over all packets acked
    /// by measured nodes. `None` if nothing was acked.
    pub fn mean_delay(&self) -> Option<SimDuration> {
        let mut total = SimDuration::ZERO;
        let mut packets = 0u64;
        for n in self.measured_nodes() {
            total += n.counters.service_delay_total;
            packets += n.counters.packets_acked;
        }
        (packets > 0).then(|| total / packets)
    }

    /// Mean end-to-end delay (creation to ACK, including source queueing)
    /// over all packets acked by measured nodes. `None` if nothing was
    /// acked. Under saturated traffic this is dominated by queueing and is
    /// not meaningful; use it with Poisson traffic.
    pub fn mean_e2e_delay(&self) -> Option<SimDuration> {
        let mut total = SimDuration::ZERO;
        let mut packets = 0u64;
        for n in self.measured_nodes() {
            total += n.counters.e2e_delay_total;
            packets += n.counters.packets_acked;
        }
        (packets > 0).then(|| total / packets)
    }

    /// Total source-queue drops over measured nodes (Poisson traffic only).
    pub fn queue_drops(&self) -> u64 {
        self.measured_nodes().map(|n| n.queue_drops).sum()
    }

    /// Total receptions lost to the injected frame error rate, over *all*
    /// nodes (losses are booked at the receiver, which may lie outside the
    /// measurement region). Zero on a perfect channel.
    pub fn fer_losses(&self) -> u64 {
        self.nodes.iter().map(|n| n.fer_losses).sum()
    }

    /// Total receptions lost to injected node outages, over all nodes.
    /// Zero without an outage plan.
    pub fn outage_losses(&self) -> u64 {
        self.nodes.iter().map(|n| n.outage_losses).sum()
    }

    /// All recorded end-to-end delays (seconds) of the measured nodes.
    /// Empty unless `SimConfig::record_delays` was set.
    pub fn delay_samples(&self) -> Vec<f64> {
        let mut all: Vec<f64> = self
            .measured_nodes()
            .flat_map(|n| n.delay_samples.iter().copied())
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite delays"));
        all
    }

    /// Collision ratio over measured nodes: data transmissions that timed
    /// out waiting for the ACK, over all handshakes that reached the data
    /// stage. `None` if no handshake got that far.
    pub fn collision_ratio(&self) -> Option<f64> {
        let mut timeouts = 0u64;
        let mut acked = 0u64;
        for n in self.measured_nodes() {
            timeouts += n.counters.ack_timeouts;
            acked += n.counters.packets_acked;
        }
        let denom = timeouts + acked;
        (denom > 0).then(|| timeouts as f64 / denom as f64)
    }

    /// Total end-of-run MAC queue depth over all nodes.
    pub fn total_backlog(&self) -> u64 {
        self.nodes.iter().map(|n| n.backlog).sum()
    }

    /// Transmit-airtime breakdown summed over the measured nodes.
    pub fn airtime_breakdown(&self) -> AirtimeBreakdown {
        let mut total = AirtimeBreakdown::default();
        for n in self.measured_nodes() {
            total.merge(&n.airtime);
        }
        total
    }

    /// Aggregated counters over the measured nodes.
    pub fn aggregate_counters(&self) -> MacCounters {
        let mut total = MacCounters::new();
        for n in self.measured_nodes() {
            total.merge(&n.counters);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(node: usize, measured: bool, acked: u64, bytes: u64) -> NodeReport {
        NodeReport {
            node,
            measured,
            counters: MacCounters {
                packets_acked: acked,
                data_acked_bytes: bytes,
                service_delay_total: SimDuration::from_millis(acked * 10),
                e2e_delay_total: SimDuration::from_millis(acked * 25),
                ..MacCounters::new()
            },
            queue_drops: 3,
            fer_losses: 2,
            outage_losses: 1,
            delay_samples: vec![0.010; acked as usize],
            airtime: AirtimeBreakdown {
                data: SimDuration::from_micros(acked * 6032),
                ..AirtimeBreakdown::default()
            },
            backlog: 0,
        }
    }

    fn result() -> RunResult {
        RunResult {
            nodes: vec![
                report(0, true, 10, 10_000),
                report(1, true, 20, 20_000),
                report(2, false, 1_000, 1_000_000),
            ],
            window: SimDuration::from_secs(1),
            events: 123,
        }
    }

    #[test]
    fn only_measured_nodes_count() {
        let r = result();
        assert_eq!(r.packets_acked(), 30);
        assert_eq!(r.measured_nodes().count(), 2);
        // 30 kB over 1 s = 240 kbit/s; node 2's megabyte is excluded.
        assert!((r.aggregate_throughput_bps() - 240_000.0).abs() < 1e-9);
        assert!((r.mean_node_throughput_bps() - 120_000.0).abs() < 1e-9);
    }

    #[test]
    fn delay_weighted_by_packets() {
        let r = result();
        // 10 ms per packet on both nodes.
        assert_eq!(r.mean_delay(), Some(SimDuration::from_millis(10)));
    }

    #[test]
    fn collision_ratio_none_without_data_stage() {
        let r = RunResult {
            nodes: vec![report(0, true, 0, 0)],
            window: SimDuration::from_secs(1),
            events: 0,
        };
        assert_eq!(r.collision_ratio(), None);
        assert_eq!(r.mean_delay(), None);
    }

    #[test]
    fn e2e_delay_and_queue_drops() {
        let r = result();
        assert_eq!(r.mean_e2e_delay(), Some(SimDuration::from_millis(25)));
        assert_eq!(r.queue_drops(), 6, "two measured nodes x 3 drops");
    }

    #[test]
    fn fault_losses_sum_all_nodes() {
        // Unlike the throughput metrics, fault losses are booked at every
        // receiver, measured or not: three nodes x (2 fer + 1 outage).
        let r = result();
        assert_eq!(r.fer_losses(), 6);
        assert_eq!(r.outage_losses(), 3);
    }

    #[test]
    fn airtime_breakdown_sums_measured_nodes() {
        let r = result();
        let a = r.airtime_breakdown();
        assert_eq!(a.data, SimDuration::from_micros(30 * 6032));
        assert_eq!(a.control(), SimDuration::ZERO);
        assert_eq!(a.total(), a.data);
    }

    #[test]
    fn delay_samples_concatenate_measured_nodes() {
        let r = result();
        assert_eq!(r.delay_samples().len(), 30, "10 + 20 measured samples");
    }

    #[test]
    fn node_throughputs_match_aggregate() {
        let r = result();
        let per_node = r.node_throughputs_bps();
        assert_eq!(per_node.len(), 2);
        let sum: f64 = per_node.iter().sum();
        assert!((sum - r.aggregate_throughput_bps()).abs() < 1e-9);
    }

    #[test]
    fn zero_window_throughput_is_zero() {
        let n = report(0, true, 10, 10_000);
        assert_eq!(n.throughput_bps(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn aggregate_counters_merge_measured_only() {
        let r = result();
        let agg = r.aggregate_counters();
        assert_eq!(agg.packets_acked, 30);
        assert_eq!(agg.data_acked_bytes, 30_000);
    }
}
