//! Network assembly: the simulated world tying together the MAC variants,
//! the directional radio, and saturated CBR traffic.
//!
//! This crate is the equivalent of GloMoSim's node/partition glue in the
//! paper's experiments. It provides:
//!
//! * [`NetWorld`] — the [`dirca_sim::World`] implementation: per-node
//!   [`dirca_mac::DcfMac`] + [`dirca_radio::Transceiver`], a shared
//!   [`dirca_radio::Channel`], and the event plumbing between them,
//! * [`SimConfig`] — one experiment's knobs (scheme, beamwidth, reception
//!   mode, traffic, warm-up/measurement windows, seed),
//! * [`run`] — builds the world from a [`dirca_topology::Topology`], runs
//!   warm-up and measurement, and returns a [`RunResult`] with per-node
//!   counters and aggregate throughput/delay/collision-ratio metrics.
//!
//! # Example
//!
//! ```
//! use dirca_mac::Scheme;
//! use dirca_net::{run, SimConfig};
//! use dirca_topology::fixtures;
//!
//! // Two saturated nodes exchanging 1460-byte packets over 802.11.
//! let topo = fixtures::pair(0.5, 1.0);
//! let config = SimConfig::new(Scheme::OrtsOcts).with_seed(7);
//! let result = run(&topo, &config);
//! assert!(result.packets_acked() > 0);
//! assert!(result.aggregate_throughput_bps() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

#[cfg(feature = "audit")]
pub mod audit;
mod config;
mod result;
pub mod salts;
#[cfg(feature = "trace")]
pub mod trace;
mod world;

pub use config::{SimConfig, TrafficModel};
pub use result::{NodeReport, RunResult};
pub use world::{AirtimeBreakdown, AppStats, NetEvent, NetWorld, TraceEntry};

// Fault-injection plumbing, re-exported so experiment code can configure a
// faulted run without depending on the radio crate directly.
pub use dirca_radio::{FaultPlan, FaultPlanError, LinkFault, Outage};
pub use dirca_sim::{RunAborted, Watchdog};

use dirca_sim::{SimTime, Simulation};
use dirca_topology::Topology;

/// Builds a [`NetWorld`] from `topology` and `config`, runs the warm-up and
/// measurement windows, and collects the results.
///
/// Counters are reset after the warm-up so start-of-run transients (empty
/// NAVs, synchronized first draws) do not bias the measurement.
///
/// # Panics
///
/// Panics if the topology is empty or node positions are invalid for the
/// channel (see [`NetWorld::build`]).
pub fn run(topology: &Topology, config: &SimConfig) -> RunResult {
    let world = NetWorld::build(topology, config);
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    let warmup_end = SimTime::ZERO + config.warmup;
    sim.run_until(warmup_end);
    sim.world_mut().reset_counters();
    let end = warmup_end + config.measure;
    sim.run_until(end);
    let events = sim.events_processed();
    RunResult::collect(sim.into_world(), config.measure, events)
}

/// Like [`run`], but the whole run (warm-up and measurement) executes
/// under `watchdog`; a tripped budget returns the structured
/// [`RunAborted`] instead of spinning or panicking, so sweep harnesses can
/// report a stuck cell and move on.
///
/// # Panics
///
/// Panics on the same invalid inputs as [`run`].
pub fn run_guarded(
    topology: &Topology,
    config: &SimConfig,
    watchdog: Watchdog,
) -> Result<RunResult, RunAborted> {
    let world = NetWorld::build(topology, config);
    let mut sim = Simulation::new(world);
    sim.set_watchdog(Some(watchdog));
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    let warmup_end = SimTime::ZERO + config.warmup;
    sim.try_run_until(warmup_end)?;
    sim.world_mut().reset_counters();
    let end = warmup_end + config.measure;
    sim.try_run_until(end)?;
    let events = sim.events_processed();
    Ok(RunResult::collect(sim.into_world(), config.measure, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_mac::Scheme;
    use dirca_sim::SimDuration;
    use dirca_topology::fixtures;

    fn quick(scheme: Scheme) -> SimConfig {
        SimConfig::new(scheme)
            .with_seed(42)
            .with_warmup(SimDuration::from_millis(50))
            .with_measure(SimDuration::from_millis(500))
    }

    #[test]
    fn isolated_pair_reaches_high_utilization() {
        // A single saturated link: utilization should approach the
        // protocol's efficiency ceiling (data / (overheads + data)), which
        // for these parameters is roughly 75%. Anything above 60% proves
        // the handshake pipeline is not stalling.
        let topo = fixtures::pair(0.5, 1.0);
        let r = run(&topo, &quick(Scheme::OrtsOcts));
        let util = r.aggregate_throughput_bps() / 2e6;
        assert!(util > 0.6, "utilization {util} too low");
        assert_eq!(r.packets_dropped(), 0, "no drops expected on a clean link");
    }

    #[test]
    fn hidden_terminal_pair_still_delivers() {
        let topo = fixtures::hidden_terminal();
        let r = run(&topo, &quick(Scheme::OrtsOcts));
        assert!(r.packets_acked() > 0);
    }

    #[test]
    fn all_schemes_work_on_parallel_pairs() {
        let topo = fixtures::parallel_pairs();
        for scheme in Scheme::ALL {
            let r = run(&topo, &quick(scheme));
            assert!(
                r.packets_acked() > 10,
                "{scheme} delivered too little: {}",
                r.packets_acked()
            );
        }
    }

    #[test]
    fn narrow_beams_enable_spatial_reuse() {
        // On the parallel-pairs fixture the two links interfere under
        // omni transmissions but can run concurrently under narrow beams:
        // DRTS-DCTS must beat ORTS-OCTS in aggregate throughput.
        let topo = fixtures::parallel_pairs();
        let mut omni_cfg = quick(Scheme::OrtsOcts);
        let mut beam_cfg = quick(Scheme::DrtsDcts).with_beamwidth_degrees(30.0);
        omni_cfg.measure = SimDuration::from_secs(2);
        beam_cfg.measure = SimDuration::from_secs(2);
        let omni = run(&topo, &omni_cfg);
        let beam = run(&topo, &beam_cfg);
        assert!(
            beam.aggregate_throughput_bps() > 1.3 * omni.aggregate_throughput_bps(),
            "beam {} vs omni {}",
            beam.aggregate_throughput_bps(),
            omni.aggregate_throughput_bps()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let topo = fixtures::hidden_terminal();
        let a = run(&topo, &quick(Scheme::DrtsOcts));
        let b = run(&topo, &quick(Scheme::DrtsOcts));
        assert_eq!(a.packets_acked(), b.packets_acked());
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(a.aggregate_throughput_bps(), b.aggregate_throughput_bps());
    }

    #[test]
    fn different_seeds_differ() {
        let topo = fixtures::hidden_terminal();
        let a = run(&topo, &quick(Scheme::OrtsOcts).with_seed(1));
        let b = run(&topo, &quick(Scheme::OrtsOcts).with_seed(2));
        // With contention the exact event counts will almost surely differ.
        assert_ne!(
            (a.events_processed(), a.packets_acked()),
            (b.events_processed(), b.packets_acked())
        );
    }
}
