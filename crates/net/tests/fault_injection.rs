//! Behavior of the deterministic fault-injection layer: zero-fault
//! transparency, seed reproducibility, FER-driven retry pressure, per-link
//! asymmetry, and outage recovery.

use dirca_mac::Scheme;
use dirca_net::{run, FaultPlan, NetWorld, RunResult, SimConfig};
use dirca_radio::NodeId;
use dirca_sim::{SimDuration, SimTime, Simulation};
use dirca_topology::fixtures;

fn quick(scheme: Scheme) -> SimConfig {
    SimConfig::new(scheme)
        .with_seed(42)
        .with_warmup(SimDuration::from_millis(50))
        .with_measure(SimDuration::from_millis(500))
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64, u64) {
    (
        r.events_processed(),
        r.packets_acked(),
        r.packets_dropped(),
        r.aggregate_counters().rts_tx,
    )
}

#[test]
fn trivial_plan_is_byte_identical_to_no_plan() {
    // The full byte-identity claim is pinned by the golden ring-trace
    // hashes; this cross-checks it on a different fixture, comparing a run
    // with no fault plan against one with an explicitly-trivial plan.
    let topo = fixtures::hidden_terminal();
    let base = run(&topo, &quick(Scheme::DrtsOcts));
    let trivial = run(
        &topo,
        &quick(Scheme::DrtsOcts).with_fault(FaultPlan::default()),
    );
    assert_eq!(fingerprint(&base), fingerprint(&trivial));
    assert_eq!(trivial.fer_losses(), 0);
    assert_eq!(trivial.outage_losses(), 0);
}

#[test]
fn faulted_runs_are_seed_reproducible() {
    let topo = fixtures::hidden_terminal();
    let plan = FaultPlan::default().with_frame_error_rate(0.15);
    let cfg = quick(Scheme::OrtsOcts).with_fault(plan);
    let a = run(&topo, &cfg);
    let b = run(&topo, &cfg);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.fer_losses(), b.fer_losses());
    assert!(a.fer_losses() > 0, "a 15% FER must corrupt something");
}

#[test]
fn fer_degrades_throughput_and_exercises_retries() {
    let topo = fixtures::pair(0.5, 1.0);
    let clean = run(&topo, &quick(Scheme::OrtsOcts));
    let noisy = run(
        &topo,
        &quick(Scheme::OrtsOcts).with_fault(FaultPlan::default().with_frame_error_rate(0.3)),
    );
    assert!(
        noisy.aggregate_throughput_bps() < 0.8 * clean.aggregate_throughput_bps(),
        "30% FER should cost well over 20% throughput: {} vs {}",
        noisy.aggregate_throughput_bps(),
        clean.aggregate_throughput_bps()
    );
    assert!(noisy.fer_losses() > 0);
    let counters = noisy.aggregate_counters();
    assert!(
        counters.cts_timeouts + counters.ack_timeouts > 0,
        "corrupted handshakes must surface as MAC timeouts"
    );
    assert_eq!(clean.fer_losses(), 0, "clean run must inject nothing");
}

#[test]
fn link_fault_is_directional_and_exhausts_retries() {
    // Kill only the 0 -> 1 direction. Nothing node 0 sends ever reaches
    // node 1 — so neither handshake direction can complete (node 1 loses
    // the CTS/ACK responses it needs) and both senders burn through their
    // retry limits. The direction still shows: node 0 hears node 1's RTS
    // and answers with CTS, node 1 never hears an RTS at all.
    let topo = fixtures::pair(0.5, 1.0);
    let plan = FaultPlan::default().with_link_fault(NodeId(0), NodeId(1), 1.0);
    let r = run(&topo, &quick(Scheme::OrtsOcts).with_fault(plan));
    let n0 = &r.nodes[0].counters;
    let n1 = &r.nodes[1].counters;
    assert_eq!(r.packets_acked(), 0, "no handshake survives a dead link");
    assert!(
        n0.packets_dropped > 0 && n1.packets_dropped > 0,
        "both senders must exhaust their retry limits: {} / {}",
        n0.packets_dropped,
        n1.packets_dropped
    );
    assert!(
        n0.cts_tx > 0,
        "the clean 1 -> 0 direction still delivers RTS"
    );
    assert_eq!(n1.cts_tx, 0, "node 1 never hears an RTS on the dead link");
    assert!(r.fer_losses() > 0);
}

#[test]
fn outage_window_loses_frames_then_recovers() {
    // Node 1 is dead for the middle of the run; node 0 keeps trying
    // (dropping some packets to retry exhaustion) and recovers afterwards.
    let topo = fixtures::pair(0.5, 1.0);
    let plan = FaultPlan::default().with_outage(
        NodeId(1),
        SimTime::from_millis(100),
        SimTime::from_millis(300),
    );
    let cfg = quick(Scheme::OrtsOcts)
        .with_warmup(SimDuration::ZERO)
        .with_measure(SimDuration::from_millis(600))
        .with_fault(plan);
    let r = run(&topo, &cfg);
    let n0 = &r.nodes[0].counters;
    assert!(
        r.outage_losses() > 0,
        "frames must be lost at the dead radio"
    );
    assert!(
        n0.packets_dropped > 0,
        "the sender must exhaust retries against a dead peer"
    );
    assert!(
        n0.packets_acked > 0,
        "traffic must resume once the radio returns"
    );
    // Control: without the outage nothing is dropped on this clean link.
    let clean = run(&topo, &quick(Scheme::OrtsOcts));
    assert_eq!(clean.packets_dropped(), 0);
}

#[test]
fn muted_node_radiates_nothing_during_outage() {
    // With node 0 dead from the start, node 1 never hears a single frame:
    // its delivered counter stays zero while node 0 still spends airtime
    // trying (checked through the world's app stats).
    let topo = fixtures::pair(0.5, 1.0);
    let plan =
        FaultPlan::default().with_outage(NodeId(0), SimTime::ZERO, SimTime::from_millis(100));
    let cfg = quick(Scheme::OrtsOcts)
        .with_warmup(SimDuration::ZERO)
        .with_measure(SimDuration::from_millis(100))
        .with_fault(plan.clone())
        .with_traffic(dirca_net::TrafficModel::Manual);
    let mut world = NetWorld::build(&topo, &cfg);
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
        world.enqueue_packet(NodeId(0), NodeId(1), 512, sched);
    }
    sim.run_until(SimTime::from_millis(50));
    let world = sim.world();
    assert!(
        world.macs()[0].counters().rts_tx > 0,
        "the muted MAC still attempts its handshake"
    );
    assert_eq!(
        world.macs()[1].counters().cts_tx,
        0,
        "node 1 never hears the RTS, so it never answers"
    );
    assert_eq!(
        world.app_stats()[1].delivered,
        0,
        "nothing can arrive from a muted radio"
    );
}

#[test]
fn fault_draws_do_not_disturb_backoff_streams() {
    // Two runs with different FER but the same seed must present the MACs
    // with the same backoff draws: the contention RNG streams are isolated
    // from the fault streams, so raising the FER changes outcomes only
    // through the injected losses themselves. Observable proxy: the first
    // transmission of each run happens at the same instant.
    let topo = fixtures::pair(0.5, 1.0);
    let trace_start = |fer: f64| {
        let cfg =
            quick(Scheme::OrtsOcts).with_fault(FaultPlan::default().with_frame_error_rate(fer));
        let mut world = NetWorld::build(&topo, &cfg);
        world.enable_trace();
        let mut sim = Simulation::new(world);
        {
            let (world, sched) = sim.world_and_scheduler_mut();
            world.prime(sched);
        }
        sim.run_until(SimTime::from_millis(20));
        sim.world().trace().expect("trace enabled")[0].time
    };
    assert_eq!(trace_start(0.4), trace_start(0.0));
}
