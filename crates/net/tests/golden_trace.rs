//! Golden-trace test: a single scripted handshake must put exactly the
//! right frames on the air at exactly the right instants.
//!
//! This pins the entire timing chain end-to-end — DIFS, backoff slots,
//! frame airtimes (sync + serialization), propagation delay, and the SIFS
//! gaps — against hand-computed values from Table 1.

// Unwraps and exact float comparisons are idiomatic in test assertions.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dirca_mac::{FrameKind, Scheme};
use dirca_net::{NetWorld, SimConfig, TrafficModel};
use dirca_radio::NodeId;
use dirca_sim::{rng::stream_rng, SimDuration, SimTime, Simulation};
use dirca_topology::fixtures;
use rand::Rng;

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

#[test]
fn scripted_handshake_matches_hand_computed_timeline() {
    let seed = 99;
    let mut config = SimConfig::new(Scheme::OrtsOcts).with_seed(seed);
    config.traffic = TrafficModel::Manual; // we inject one packet by hand
    let topo = fixtures::pair(0.5, 1.0);
    let mut world = NetWorld::build(&topo, &config);
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.enqueue_packet(NodeId(0), NodeId(1), 1460, sched);
    }
    sim.run_until(SimTime::from_millis(100));

    // Replicate node 0's first RNG draw: with no traffic generator, the
    // backoff draw is the first use of its stream.
    let backoff_slots = u64::from(stream_rng(seed, 0).random_range(0..=31u32));

    let trace = sim.world().trace().expect("trace enabled").to_vec();
    assert_eq!(trace.len(), 4, "exactly one four-way handshake: {trace:?}");

    // Hand-computed instants (Table 1, DSSS 2 Mbps):
    //   RTS  at DIFS + k·slot
    //   CTS  at RTS + 272 µs air + 1 µs prop + 10 µs SIFS
    //   DATA at CTS + 248 µs air + 1 µs prop + 10 µs SIFS
    //   ACK  at DATA + 6032 µs air + 1 µs prop + 10 µs SIFS
    let rts_t = SimTime::ZERO + us(50) + us(20) * backoff_slots;
    let cts_t = rts_t + us(272) + us(1) + us(10);
    let data_t = cts_t + us(248) + us(1) + us(10);
    let ack_t = data_t + us(6032) + us(1) + us(10);

    let expect = [
        (FrameKind::Rts, NodeId(0), NodeId(1), rts_t),
        (FrameKind::Cts, NodeId(1), NodeId(0), cts_t),
        (FrameKind::Data, NodeId(0), NodeId(1), data_t),
        (FrameKind::Ack, NodeId(1), NodeId(0), ack_t),
    ];
    for (entry, (kind, src, dst, at)) in trace.iter().zip(expect) {
        assert_eq!(entry.frame.kind, kind);
        assert_eq!(entry.frame.src, src);
        assert_eq!(entry.frame.dst, dst);
        assert_eq!(entry.time, at, "{kind} at {} but expected {at}", entry.time);
        assert!(!entry.directional, "ORTS-OCTS frames are all omni");
    }

    // The handshake completed: sender counts one acked packet.
    let acked: u64 = sim
        .world()
        .macs()
        .iter()
        .map(|m| m.counters().packets_acked)
        .sum();
    assert_eq!(acked, 1);
}

#[test]
fn drts_dcts_trace_marks_all_frames_directional() {
    let mut config = SimConfig::new(Scheme::DrtsDcts)
        .with_seed(3)
        .with_beamwidth_degrees(30.0);
    config.traffic = TrafficModel::Manual;
    let topo = fixtures::pair(0.5, 1.0);
    let mut world = NetWorld::build(&topo, &config);
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.enqueue_packet(NodeId(0), NodeId(1), 1460, sched);
    }
    sim.run_until(SimTime::from_millis(100));
    let trace = sim.world().trace().unwrap();
    assert_eq!(trace.len(), 4);
    assert!(trace.iter().all(|e| e.directional));
}

#[test]
fn drts_octs_trace_has_omni_cts_only() {
    let mut config = SimConfig::new(Scheme::DrtsOcts)
        .with_seed(3)
        .with_beamwidth_degrees(30.0);
    config.traffic = TrafficModel::Manual;
    let topo = fixtures::pair(0.5, 1.0);
    let mut world = NetWorld::build(&topo, &config);
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.enqueue_packet(NodeId(0), NodeId(1), 1460, sched);
    }
    sim.run_until(SimTime::from_millis(100));
    for entry in sim.world().trace().unwrap() {
        assert_eq!(
            entry.directional,
            entry.frame.kind != FrameKind::Cts,
            "wrong beam decision for {}",
            entry.frame
        );
    }
}

#[test]
fn nav_defers_third_party_through_whole_handshake() {
    // A — B exchange with C parked next to A: C receives its own packet
    // for B mid-handshake and must not transmit until A's exchange (and
    // the NAV it advertised) completes.
    let topo = fixtures::hidden_terminal(); // A(0) — B(1) — C(2)
    let mut config = SimConfig::new(Scheme::OrtsOcts).with_seed(5);
    config.traffic = TrafficModel::Manual;
    let mut world = NetWorld::build(&topo, &config);
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.enqueue_packet(NodeId(0), NodeId(1), 1460, sched);
    }
    // Let the RTS/CTS happen, then give C a packet mid-exchange.
    sim.run_until(SimTime::from_millis(1));
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.enqueue_packet(NodeId(2), NodeId(1), 1460, sched);
    }
    sim.run_until(SimTime::from_millis(100));

    let trace = sim.world().trace().unwrap();
    // C heard B's CTS (it is B's neighbour), so its RTS must come after
    // A's ACK arrives — i.e. after the whole first handshake.
    let first_ack = trace
        .iter()
        .find(|e| e.frame.kind == FrameKind::Ack)
        .expect("first handshake completed")
        .time;
    let c_rts = trace
        .iter()
        .find(|e| e.frame.kind == FrameKind::Rts && e.frame.src == NodeId(2))
        .expect("C eventually transmits")
        .time;
    assert!(
        c_rts > first_ack,
        "C transmitted at {c_rts} before the reserved exchange finished at {first_ack}"
    );
    // And both packets were ultimately delivered.
    let acked: u64 = sim
        .world()
        .macs()
        .iter()
        .map(|m| m.counters().packets_acked)
        .sum();
    assert_eq!(acked, 2);
}
