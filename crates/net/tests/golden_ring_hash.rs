//! Recorded golden ring traces: the full frame trace of one seeded random
//! ring run per scheme, pinned by FNV-1a hash.
//!
//! The determinism test (`determinism.rs`) proves two same-seed runs agree
//! with *each other*; this test pins them against values recorded before
//! the precomputed-coverage fast path landed (PR 2), proving the cached
//! transmit path reproduces the reference `Channel::covered_by` path
//! byte-for-byte. If a deliberate behaviour change invalidates these
//! hashes, re-record them with `cargo test -p dirca-net --test
//! golden_ring_hash -- --nocapture print_current_hashes --ignored`.

use dirca_mac::Scheme;
use dirca_net::{NetWorld, SimConfig};
use dirca_sim::rng::stream_rng;
use dirca_sim::{SimTime, Simulation};
use dirca_topology::RingSpec;

/// FNV-1a over the debug-serialized frame trace.
fn ring_trace_hash(scheme: Scheme, seed: u64) -> u64 {
    ring_trace_hash_with(scheme, seed, false).0
}

/// Runs the golden ring configuration and hashes its frame trace. With
/// `recorder` set (trace feature only), a [`dirca_net::trace::RingTrace`]
/// recorder rides along and its JSONL export is returned for inspection —
/// the frame-trace hash must not change either way, which is the
/// observability layer's non-perturbation proof.
fn ring_trace_hash_with(scheme: Scheme, seed: u64, recorder: bool) -> (u64, Option<String>) {
    let spec = RingSpec::paper(5, 1.0);
    let mut topo_rng = stream_rng(seed, 0xA11CE);
    let topology = spec.generate(&mut topo_rng).expect("ring topology");
    let config = SimConfig::new(scheme)
        .with_seed(seed)
        .with_beamwidth_degrees(30.0);
    let mut world = NetWorld::build(&topology, &config);
    world.enable_trace();
    #[cfg(feature = "trace")]
    if recorder {
        world.attach_recorder(dirca_net::trace::RingTrace::with_capacity(1 << 16));
    }
    #[cfg(not(feature = "trace"))]
    let _ = recorder;
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    sim.run_until(SimTime::from_millis(400));
    #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
    let mut world = sim.into_world();
    #[cfg(feature = "trace")]
    let jsonl = world.take_recorder().map(|r| r.to_jsonl());
    #[cfg(not(feature = "trace"))]
    let jsonl = None;
    let trace = world.trace().expect("trace enabled");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{trace:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash, jsonl)
}

/// (scheme, seed, FNV-1a of the trace) recorded on the pre-fast-path tree.
const RECORDED: &[(Scheme, u64, u64)] = &[
    (Scheme::OrtsOcts, 7, 0xe4d2_1263_1a44_5525),
    (Scheme::OrtsOcts, 21, 0x12d8_5da6_451d_a8af),
    (Scheme::DrtsDcts, 7, 0x2996_f717_dc7f_4175),
    (Scheme::DrtsDcts, 21, 0xaddc_d313_d5fc_6531),
    (Scheme::DrtsOcts, 7, 0xb224_28fd_d601_3676),
    (Scheme::DrtsOcts, 21, 0x3e5c_4317_2f31_0d37),
];

#[test]
fn ring_traces_match_recorded_golden_hashes() {
    for &(scheme, seed, want) in RECORDED {
        let got = ring_trace_hash(scheme, seed);
        assert_eq!(
            got, want,
            "{scheme} seed {seed}: trace diverged from the recorded golden run"
        );
    }
}

/// The observability layer's non-perturbation battery: attaching the
/// trace recorder must reproduce the recorded golden hashes byte-for-byte
/// (the recorder observes frames and RNG draws without touching either),
/// and the exported JSONL itself must be deterministic across same-seed
/// runs.
#[cfg(feature = "trace")]
mod recorder_does_not_perturb {
    use super::*;

    #[test]
    fn golden_hashes_survive_an_attached_recorder() {
        for &(scheme, seed, want) in RECORDED {
            let (got, jsonl) = ring_trace_hash_with(scheme, seed, true);
            assert_eq!(
                got, want,
                "{scheme} seed {seed}: attaching the trace recorder perturbed the run"
            );
            assert!(
                jsonl.expect("recorder attached").lines().count() > 100,
                "{scheme} seed {seed}: recorder captured implausibly few records"
            );
        }
    }

    #[test]
    fn same_seed_runs_emit_identical_jsonl() {
        for scheme in Scheme::ALL {
            let (_, a) = ring_trace_hash_with(scheme, 7, true);
            let (_, b) = ring_trace_hash_with(scheme, 7, true);
            assert_eq!(
                a, b,
                "{scheme}: two same-seed runs exported different JSONL traces"
            );
        }
    }
}

#[test]
#[ignore = "recording helper: prints the current hashes for RECORDED"]
fn print_current_hashes() {
    for scheme in Scheme::ALL {
        for seed in [7u64, 21] {
            println!(
                "    (Scheme::{scheme:?}, {seed}, 0x{:016x}),",
                ring_trace_hash(scheme, seed)
            );
        }
    }
}
