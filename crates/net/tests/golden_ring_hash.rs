//! Recorded golden ring traces: the full frame trace of one seeded random
//! ring run per scheme, pinned by FNV-1a hash.
//!
//! The determinism test (`determinism.rs`) proves two same-seed runs agree
//! with *each other*; this test pins them against values recorded before
//! the precomputed-coverage fast path landed (PR 2), proving the cached
//! transmit path reproduces the reference `Channel::covered_by` path
//! byte-for-byte. If a deliberate behaviour change invalidates these
//! hashes, re-record them with `cargo test -p dirca-net --test
//! golden_ring_hash -- --nocapture print_current_hashes --ignored`.

use dirca_mac::Scheme;
use dirca_net::{NetWorld, SimConfig};
use dirca_sim::rng::stream_rng;
use dirca_sim::{SimTime, Simulation};
use dirca_topology::RingSpec;

/// FNV-1a over the debug-serialized frame trace.
fn ring_trace_hash(scheme: Scheme, seed: u64) -> u64 {
    let spec = RingSpec::paper(5, 1.0);
    let mut topo_rng = stream_rng(seed, 0xA11CE);
    let topology = spec.generate(&mut topo_rng).expect("ring topology");
    let config = SimConfig::new(scheme)
        .with_seed(seed)
        .with_beamwidth_degrees(30.0);
    let mut world = NetWorld::build(&topology, &config);
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    sim.run_until(SimTime::from_millis(400));
    let world = sim.into_world();
    let trace = world.trace().expect("trace enabled");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{trace:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// (scheme, seed, FNV-1a of the trace) recorded on the pre-fast-path tree.
const RECORDED: &[(Scheme, u64, u64)] = &[
    (Scheme::OrtsOcts, 7, 0xe4d2_1263_1a44_5525),
    (Scheme::OrtsOcts, 21, 0x12d8_5da6_451d_a8af),
    (Scheme::DrtsDcts, 7, 0x2996_f717_dc7f_4175),
    (Scheme::DrtsDcts, 21, 0xaddc_d313_d5fc_6531),
    (Scheme::DrtsOcts, 7, 0xb224_28fd_d601_3676),
    (Scheme::DrtsOcts, 21, 0x3e5c_4317_2f31_0d37),
];

#[test]
fn ring_traces_match_recorded_golden_hashes() {
    for &(scheme, seed, want) in RECORDED {
        let got = ring_trace_hash(scheme, seed);
        assert_eq!(
            got, want,
            "{scheme} seed {seed}: trace diverged from the recorded golden run"
        );
    }
}

#[test]
#[ignore = "recording helper: prints the current hashes for RECORDED"]
fn print_current_hashes() {
    for scheme in Scheme::ALL {
        for seed in [7u64, 21] {
            println!(
                "    (Scheme::{scheme:?}, {seed}, 0x{:016x}),",
                ring_trace_hash(scheme, seed)
            );
        }
    }
}
