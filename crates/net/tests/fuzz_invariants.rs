//! Property tests of the full network stack: random topologies, seeds,
//! schemes, and beamwidths must never wedge the simulation or violate
//! frame-conservation invariants.

use dirca_geometry::Point;
use dirca_mac::Scheme;
use dirca_net::{run, SimConfig, TrafficModel};
use dirca_sim::SimDuration;
use dirca_topology::Topology;
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::OrtsOcts),
        Just(Scheme::DrtsDcts),
        Just(Scheme::DrtsOcts),
    ]
}

/// Random connected-ish topologies: up to 8 nodes in a 2×2 box with unit
/// range (most placements are at least partially connected).
fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop::collection::vec((0.0f64..2.0, 0.0f64..2.0), 2..8).prop_map(|points| Topology {
        measured: points.len(),
        positions: points.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
        range: 1.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_networks_never_violate_conservation(
        topology in topology_strategy(),
        scheme in scheme_strategy(),
        seed in 0u64..1_000,
        theta in 10.0f64..360.0,
    ) {
        let config = SimConfig::new(scheme)
            .with_beamwidth_degrees(theta)
            .with_seed(seed)
            .with_warmup(SimDuration::from_millis(20))
            .with_measure(SimDuration::from_millis(300));
        let result = run(&topology, &config);

        let mut rts = 0u64;
        let mut cts_tx = 0u64;
        let mut data_tx = 0u64;
        let mut ack_tx = 0u64;
        let mut delivered = 0u64;
        let mut acked = 0u64;
        for node in &result.nodes {
            let c = &node.counters;
            rts += c.rts_tx;
            cts_tx += c.cts_tx;
            data_tx += c.data_tx;
            ack_tx += c.ack_tx;
            delivered += c.data_delivered;
            acked += c.packets_acked;
        }
        let slack = result.nodes.len() as u64; // warm-up boundary in-flight frames
        prop_assert!(rts + slack >= data_tx, "DATA {data_tx} > RTS {rts}");
        prop_assert!(cts_tx + slack >= data_tx, "DATA {data_tx} > CTS {cts_tx}");
        prop_assert!(ack_tx <= delivered + slack, "ACK {ack_tx} > delivered {delivered}");
        prop_assert!(acked <= ack_tx + slack, "acked {acked} > ACK {ack_tx}");
        // Throughput is bounded by physics: every link runs at 2 Mbps and
        // each node pair can use at most one channel's worth; aggregate
        // over n nodes cannot exceed n/2 concurrent links... loosely bound
        // by n × bit-rate to catch unit errors.
        let bound = 2e6 * result.nodes.len() as f64;
        prop_assert!(result.aggregate_throughput_bps() <= bound);
    }

    #[test]
    fn poisson_traffic_never_violates_accounting(
        seed in 0u64..300,
        scheme in scheme_strategy(),
        rate in 1.0f64..120.0,
    ) {
        // Offered arrivals must equal carried + dropped + still-queued,
        // within boundary slack, for any rate and scheme.
        let topology = dirca_topology::fixtures::hidden_terminal();
        let config = SimConfig::new(scheme)
            .with_seed(seed)
            .with_traffic(TrafficModel::Poisson { packets_per_sec: rate, max_queue: 8 })
            .with_warmup(SimDuration::from_millis(20))
            .with_measure(SimDuration::from_millis(400));
        let result = run(&topology, &config);
        for node in &result.nodes {
            // Per-node sanity: acked + dropped never exceeds what could
            // have arrived (rate × window × generous factor).
            let handled = node.counters.packets_acked + node.counters.packets_dropped;
            let offered_bound = (rate * 0.42 * 10.0).ceil() as u64 + 16;
            prop_assert!(
                handled <= offered_bound,
                "node {} handled {handled} > plausible offered {offered_bound}",
                node.node
            );
        }
        // Queue drops only appear when the source queue can actually fill.
        if rate < 5.0 {
            prop_assert_eq!(result.queue_drops(), 0, "drops at trivial load");
        }
    }

    #[test]
    fn connected_pairs_always_make_progress(
        seed in 0u64..500,
        scheme in scheme_strategy(),
        spacing in 0.05f64..0.95,
    ) {
        // Any in-range pair under any scheme/seed must complete handshakes:
        // a saturated two-node network that delivers nothing in 300 ms of
        // simulated time is wedged.
        let topology = dirca_topology::fixtures::pair(spacing, 1.0);
        let config = SimConfig::new(scheme)
            .with_seed(seed)
            .with_warmup(SimDuration::from_millis(20))
            .with_measure(SimDuration::from_millis(300));
        let result = run(&topology, &config);
        prop_assert!(
            result.packets_acked() > 0,
            "wedged: no packets acked ({scheme}, seed {seed}, spacing {spacing})"
        );
    }
}
