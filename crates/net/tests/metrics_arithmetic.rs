//! Arithmetic of the run-result metrics on hand-constructed reports.
//!
//! The metrics registry snapshots these numbers into experiment reports, so
//! each derived quantity is pinned here against values computed by hand —
//! including the degenerate windows a simulation never produces but a
//! replay tool might.
#![allow(clippy::float_cmp)] // exact-zero identities are the point here

use dirca_mac::MacCounters;
use dirca_net::{AirtimeBreakdown, NodeReport, RunResult};
use dirca_sim::SimDuration;

/// A measured node that acked `acked` packets of 1000 bytes each, timing
/// out `ack_timeouts` times on the way.
fn node(id: usize, measured: bool, acked: u64, ack_timeouts: u64) -> NodeReport {
    NodeReport {
        node: id,
        measured,
        counters: MacCounters {
            rts_tx: acked + ack_timeouts,
            cts_tx: acked,
            data_tx: acked + ack_timeouts,
            ack_tx: acked,
            ack_timeouts,
            packets_acked: acked,
            data_acked_bytes: acked * 1000,
            service_delay_total: SimDuration::from_millis(acked * 8),
            ..MacCounters::new()
        },
        queue_drops: 0,
        fer_losses: 0,
        outage_losses: 0,
        delay_samples: Vec::new(),
        airtime: AirtimeBreakdown {
            rts: SimDuration::from_micros((acked + ack_timeouts) * 272),
            cts: SimDuration::from_micros(acked * 248),
            data: SimDuration::from_micros((acked + ack_timeouts) * 6032),
            ack: SimDuration::from_micros(acked * 248),
        },
        backlog: 5,
    }
}

#[test]
fn throughput_is_acked_bits_over_window() {
    let n = node(0, true, 25, 0);
    // 25 packets x 1000 bytes x 8 bits over 2 s.
    let bps = n.throughput_bps(SimDuration::from_secs(2));
    assert!((bps - 100_000.0).abs() < 1e-9, "got {bps}");
}

#[test]
fn throughput_of_zero_window_is_zero_not_nan() {
    let n = node(0, true, 25, 0);
    assert_eq!(n.throughput_bps(SimDuration::ZERO), 0.0);
}

#[test]
fn throughput_with_zero_acked_is_zero() {
    let n = node(0, true, 0, 4);
    assert_eq!(n.throughput_bps(SimDuration::from_secs(1)), 0.0);
}

#[test]
fn collision_ratio_counts_ack_timeouts_over_data_stage() {
    // 30 acked + 10 timeouts across the measured nodes -> 10 / 40.
    let r = RunResult::from_parts(
        vec![node(0, true, 10, 6), node(1, true, 20, 4)],
        SimDuration::from_secs(1),
        0,
    );
    let ratio = r.collision_ratio().expect("data stage reached");
    assert!((ratio - 0.25).abs() < 1e-12, "got {ratio}");
}

#[test]
fn collision_ratio_ignores_unmeasured_nodes() {
    let r = RunResult::from_parts(
        vec![node(0, true, 10, 0), node(1, false, 0, 99)],
        SimDuration::from_secs(1),
        0,
    );
    // The unmeasured node's 99 timeouts must not leak in.
    assert_eq!(r.collision_ratio(), Some(0.0));
}

#[test]
fn collision_ratio_is_none_when_no_handshake_reached_data() {
    let r = RunResult::from_parts(vec![node(0, true, 0, 0)], SimDuration::from_secs(1), 0);
    assert_eq!(r.collision_ratio(), None);
}

#[test]
fn airtime_breakdown_sums_measured_nodes_by_kind() {
    let r = RunResult::from_parts(
        vec![
            node(0, true, 10, 2),
            node(1, true, 5, 0),
            node(2, false, 100, 0),
        ],
        SimDuration::from_secs(1),
        0,
    );
    let a = r.airtime_breakdown();
    assert_eq!(a.rts, SimDuration::from_micros(17 * 272));
    assert_eq!(a.cts, SimDuration::from_micros(15 * 248));
    assert_eq!(a.data, SimDuration::from_micros(17 * 6032));
    assert_eq!(a.ack, SimDuration::from_micros(15 * 248));
    assert_eq!(a.control(), a.rts + a.cts + a.ack);
    assert_eq!(a.total(), a.control() + a.data);
}

#[test]
fn empty_result_yields_identity_metrics() {
    let r = RunResult::from_parts(Vec::new(), SimDuration::from_secs(1), 0);
    assert_eq!(r.packets_acked(), 0);
    assert_eq!(r.aggregate_throughput_bps(), 0.0);
    assert_eq!(r.mean_node_throughput_bps(), 0.0);
    assert_eq!(r.collision_ratio(), None);
    assert_eq!(r.mean_delay(), None);
    assert_eq!(r.total_backlog(), 0);
    assert_eq!(r.airtime_breakdown().total(), SimDuration::ZERO);
    assert_eq!(r.aggregate_counters().packets_acked, 0);
}

#[test]
fn aggregate_counters_merge_component_wise() {
    let r = RunResult::from_parts(
        vec![
            node(0, true, 10, 2),
            node(1, true, 20, 3),
            node(2, false, 7, 7),
        ],
        SimDuration::from_secs(1),
        42,
    );
    let agg = r.aggregate_counters();
    assert_eq!(agg.packets_acked, 30);
    assert_eq!(agg.ack_timeouts, 5);
    assert_eq!(agg.rts_tx, 35);
    assert_eq!(agg.data_acked_bytes, 30_000);
    assert_eq!(
        agg.service_delay_total,
        SimDuration::from_millis(30 * 8),
        "delay totals add linearly"
    );
    assert_eq!(r.events_processed(), 42);
}

#[test]
fn derived_counter_ratios_match_aggregates() {
    let r = RunResult::from_parts(vec![node(0, true, 15, 5)], SimDuration::from_secs(1), 0);
    let agg = r.aggregate_counters();
    // The MacCounters-level ratio and the RunResult-level ratio agree.
    assert_eq!(agg.collision_ratio(), r.collision_ratio());
    assert_eq!(agg.mean_service_delay(), r.mean_delay());
}

#[test]
fn backlog_sums_over_all_nodes() {
    // Backlog is an occupancy snapshot, not a flow metric: unmeasured
    // nodes count too (5 per node in the fixture).
    let r = RunResult::from_parts(
        vec![
            node(0, true, 1, 0),
            node(1, false, 1, 0),
            node(2, false, 1, 0),
        ],
        SimDuration::from_secs(1),
        0,
    );
    assert_eq!(r.total_backlog(), 15);
}
