//! Tests of the unsaturated (Poisson) traffic model.

// Unwraps and exact float comparisons are idiomatic in test assertions.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dirca_mac::Scheme;
use dirca_net::{run, SimConfig, TrafficModel};
use dirca_sim::SimDuration;
use dirca_topology::fixtures;

fn poisson(pps: f64) -> TrafficModel {
    TrafficModel::Poisson {
        packets_per_sec: pps,
        max_queue: 16,
    }
}

fn config(scheme: Scheme, pps: f64) -> SimConfig {
    SimConfig::new(scheme)
        .with_seed(11)
        .with_traffic(poisson(pps))
        .with_warmup(SimDuration::from_millis(200))
        .with_measure(SimDuration::from_secs(5))
}

#[test]
fn light_load_is_carried_losslessly() {
    // 10 packets/s/node × 2 nodes × 11 680 bits ≈ 234 kbit/s offered —
    // well under capacity: carried load must match offered load closely
    // and nothing may be dropped. The window must be long enough for the
    // 15% tolerance to be a ≥3σ bound on the Poisson count (20 s ⇒ 400
    // expected packets, σ = 20, tolerance = 60 packets).
    let topo = fixtures::pair(0.5, 1.0);
    let mut cfg = config(Scheme::OrtsOcts, 10.0);
    cfg.measure = SimDuration::from_secs(20);
    let result = run(&topo, &cfg);
    let offered = 2.0 * 10.0;
    let carried = result.packets_acked() as f64 / 20.0;
    assert_eq!(result.queue_drops(), 0, "queue drops under light load");
    assert_eq!(result.packets_dropped(), 0);
    assert!(
        (carried - offered).abs() / offered < 0.15,
        "carried {carried} pkt/s vs offered {offered} pkt/s"
    );
}

#[test]
fn light_load_delay_is_near_service_floor() {
    // With almost no queueing, the end-to-end delay approaches the MAC
    // service time (~7 ms handshake + DIFS + mean backoff ≈ 7.5 ms).
    let topo = fixtures::pair(0.5, 1.0);
    let result = run(&topo, &config(Scheme::OrtsOcts, 5.0));
    let e2e = result
        .mean_e2e_delay()
        .expect("packets delivered")
        .as_secs_f64()
        * 1e3;
    assert!(e2e > 6.8, "e2e delay {e2e} ms below physical floor");
    assert!(e2e < 15.0, "e2e delay {e2e} ms too high for light load");
}

#[test]
fn overload_saturates_and_sheds_at_the_source() {
    // 200 packets/s/node × 11 680 bits × 2 nodes ≈ 4.7 Mbit/s offered on a
    // 2 Mbit/s channel: the carried load must cap near the saturation
    // throughput and the excess must be shed as queue drops.
    let topo = fixtures::pair(0.5, 1.0);
    let result = run(&topo, &config(Scheme::OrtsOcts, 200.0));
    let util = result.aggregate_throughput_bps() / 2e6;
    assert!(
        util > 0.55,
        "overloaded link should run near saturation: {util}"
    );
    assert!(
        result.queue_drops() > 100,
        "source queues must shed overload"
    );
}

#[test]
fn delay_grows_with_load() {
    let topo = fixtures::pair(0.5, 1.0);
    let light = run(&topo, &config(Scheme::OrtsOcts, 5.0));
    let heavy = run(&topo, &config(Scheme::OrtsOcts, 70.0));
    let d_light = light.mean_e2e_delay().unwrap();
    let d_heavy = heavy.mean_e2e_delay().unwrap();
    assert!(
        d_heavy > d_light,
        "delay must grow with load: {d_heavy} <= {d_light}"
    );
}

#[test]
fn poisson_runs_are_deterministic() {
    let topo = fixtures::hidden_terminal();
    let a = run(&topo, &config(Scheme::DrtsDcts, 30.0));
    let b = run(&topo, &config(Scheme::DrtsDcts, 30.0));
    assert_eq!(a.events_processed(), b.events_processed());
    assert_eq!(a.packets_acked(), b.packets_acked());
    assert_eq!(a.queue_drops(), b.queue_drops());
}

#[test]
fn arrival_counts_scale_with_rate() {
    // Twice the rate must produce roughly twice the carried packets while
    // under capacity.
    let topo = fixtures::pair(0.5, 1.0);
    let low = run(&topo, &config(Scheme::OrtsOcts, 8.0));
    let high = run(&topo, &config(Scheme::OrtsOcts, 16.0));
    let ratio = high.packets_acked() as f64 / low.packets_acked() as f64;
    assert!(
        (ratio - 2.0).abs() < 0.4,
        "rate doubling gave ratio {ratio}"
    );
}
