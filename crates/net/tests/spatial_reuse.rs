//! The paper's central phenomenon, verified from the frame trace: under
//! narrow-beam DRTS-DCTS two disjoint links transmit data *at the same
//! time*, while under ORTS-OCTS the shared medium never lets their
//! *successful* data frames overlap (concurrent attempts collide).

use dirca_mac::{Dot11Params, FrameKind, Scheme};
use dirca_net::{NetWorld, SimConfig, TraceEntry};
use dirca_sim::{SimTime, Simulation};
use dirca_topology::fixtures;

/// Runs the parallel-pairs fixture and returns the recorded trace.
fn trace_for(scheme: Scheme) -> Vec<TraceEntry> {
    let config = SimConfig::new(scheme)
        .with_beamwidth_degrees(30.0)
        .with_seed(77);
    let topo = fixtures::parallel_pairs(); // S0(0)—R0(1)   R1(2)—S1(3)
    let mut world = NetWorld::build(&topo, &config);
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    sim.run_until(SimTime::from_secs(1));
    sim.world().trace().expect("trace enabled").to_vec()
}

/// Collects the on-air intervals of DATA frames originated by `src`.
fn data_windows(trace: &[TraceEntry], src: usize) -> Vec<(u64, u64)> {
    let params = Dot11Params::dsss_2mbps();
    trace
        .iter()
        .filter(|e| e.frame.kind == FrameKind::Data && e.frame.src.0 == src)
        .map(|e| {
            let start = e.time.as_nanos();
            (start, start + params.frame_airtime(&e.frame).as_nanos())
        })
        .collect()
}

/// Collects the on-air intervals of DATA frames originated by `src` that
/// were acknowledged: an ACK from the destination back to `src` follows
/// within SIFS of the frame's end (the next handshake is several
/// milliseconds out, so a half-millisecond pairing window is unambiguous).
fn acked_data_windows(trace: &[TraceEntry], src: usize) -> Vec<(u64, u64)> {
    data_windows(trace, src)
        .into_iter()
        .filter(|&(_, end)| {
            trace.iter().any(|e| {
                e.frame.kind == FrameKind::Ack
                    && e.frame.dst.0 == src
                    && (end..end + 500_000).contains(&e.time.as_nanos())
            })
        })
        .collect()
}

fn overlap_count(a: &[(u64, u64)], b: &[(u64, u64)]) -> usize {
    a.iter()
        .map(|&(s1, e1)| b.iter().filter(|&&(s2, e2)| s1 < e2 && s2 < e1).count())
        .sum()
}

#[test]
fn drts_dcts_data_frames_overlap_in_time() {
    let trace = trace_for(Scheme::DrtsDcts);
    let left = data_windows(&trace, 0);
    let right = data_windows(&trace, 3);
    assert!(
        !left.is_empty() && !right.is_empty(),
        "both links must be active"
    );
    let overlaps = overlap_count(&left, &right);
    assert!(
        overlaps > left.len().min(right.len()) / 2,
        "narrow beams should let the links run concurrently: {overlaps} overlaps \
         over {} × {} data frames",
        left.len(),
        right.len()
    );
}

#[test]
fn orts_octs_successful_data_frames_never_overlap() {
    // Under the omni scheme, S0's data keeps R1's neighbourhood silent (R0
    // and R1 hear each other) — the two links alternate. The handshake
    // cannot make that airtight: when both receivers' CTS responses cross
    // on the air, each corrupts the other in the shared R0–R1 neighbourhood,
    // no NAV gets loaded, and both senders launch DATA concurrently. Those
    // residual overlaps are exactly the collisions the omni scheme pays
    // for — at most one of the colliding frames survives. So the paper's
    // claim is about *successful* transfers: acknowledged data frames must
    // strictly serialize, and they must be the common case.
    let trace = trace_for(Scheme::OrtsOcts);
    let left = data_windows(&trace, 0);
    let right = data_windows(&trace, 3);
    assert!(
        !left.is_empty() && !right.is_empty(),
        "both links must be active"
    );
    let left_acked = acked_data_windows(&trace, 0);
    let right_acked = acked_data_windows(&trace, 3);
    assert!(
        2 * (left_acked.len() + right_acked.len()) > left.len() + right.len(),
        "most omni data frames should still be acknowledged: {} + {} acked \
         of {} + {}",
        left_acked.len(),
        right_acked.len(),
        left.len(),
        right.len()
    );
    assert_eq!(
        overlap_count(&left_acked, &right_acked),
        0,
        "successful omni data frames must serialize on the shared medium"
    );
}

#[test]
fn spatial_reuse_roughly_doubles_data_airtime() {
    let dir_trace = trace_for(Scheme::DrtsDcts);
    let omni_trace = trace_for(Scheme::OrtsOcts);
    let count_data =
        |t: &[TraceEntry]| t.iter().filter(|e| e.frame.kind == FrameKind::Data).count();
    let dir = count_data(&dir_trace);
    let omni = count_data(&omni_trace);
    assert!(
        dir as f64 > 1.5 * omni as f64,
        "expected ~2× data frames under reuse: {dir} vs {omni}"
    );
}
