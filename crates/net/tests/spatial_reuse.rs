//! The paper's central phenomenon, verified from the frame trace: under
//! narrow-beam DRTS-DCTS two disjoint links transmit data *at the same
//! time*, while under ORTS-OCTS the shared medium never lets their data
//! frames overlap.

use dirca_mac::{Dot11Params, FrameKind, Scheme};
use dirca_net::{NetWorld, SimConfig, TraceEntry};
use dirca_sim::{SimTime, Simulation};
use dirca_topology::fixtures;

/// Runs the parallel-pairs fixture and returns the recorded trace.
fn trace_for(scheme: Scheme) -> Vec<TraceEntry> {
    let config = SimConfig::new(scheme)
        .with_beamwidth_degrees(30.0)
        .with_seed(77);
    let topo = fixtures::parallel_pairs(); // S0(0)—R0(1)   R1(2)—S1(3)
    let mut world = NetWorld::build(&topo, &config);
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    sim.run_until(SimTime::from_secs(1));
    sim.world().trace().expect("trace enabled").to_vec()
}

/// Collects the on-air intervals of DATA frames originated by `src`.
fn data_windows(trace: &[TraceEntry], src: usize) -> Vec<(u64, u64)> {
    let params = Dot11Params::dsss_2mbps();
    trace
        .iter()
        .filter(|e| e.frame.kind == FrameKind::Data && e.frame.src.0 == src)
        .map(|e| {
            let start = e.time.as_nanos();
            (start, start + params.frame_airtime(&e.frame).as_nanos())
        })
        .collect()
}

fn overlap_count(a: &[(u64, u64)], b: &[(u64, u64)]) -> usize {
    a.iter()
        .map(|&(s1, e1)| b.iter().filter(|&&(s2, e2)| s1 < e2 && s2 < e1).count())
        .sum()
}

#[test]
fn drts_dcts_data_frames_overlap_in_time() {
    let trace = trace_for(Scheme::DrtsDcts);
    let left = data_windows(&trace, 0);
    let right = data_windows(&trace, 3);
    assert!(
        !left.is_empty() && !right.is_empty(),
        "both links must be active"
    );
    let overlaps = overlap_count(&left, &right);
    assert!(
        overlaps > left.len().min(right.len()) / 2,
        "narrow beams should let the links run concurrently: {overlaps} overlaps \
         over {} × {} data frames",
        left.len(),
        right.len()
    );
}

#[test]
fn orts_octs_data_frames_never_overlap() {
    // Under the omni scheme, S0's data keeps R1's neighbourhood silent (R0
    // and R1 hear each other) — the two links strictly alternate.
    let trace = trace_for(Scheme::OrtsOcts);
    let left = data_windows(&trace, 0);
    let right = data_windows(&trace, 3);
    assert!(
        !left.is_empty() && !right.is_empty(),
        "both links must be active"
    );
    assert_eq!(
        overlap_count(&left, &right),
        0,
        "omni data frames must serialize on the shared medium"
    );
}

#[test]
fn spatial_reuse_roughly_doubles_data_airtime() {
    let dir_trace = trace_for(Scheme::DrtsDcts);
    let omni_trace = trace_for(Scheme::OrtsOcts);
    let count_data =
        |t: &[TraceEntry]| t.iter().filter(|e| e.frame.kind == FrameKind::Data).count();
    let dir = count_data(&dir_trace);
    let omni = count_data(&omni_trace);
    assert!(
        dir as f64 > 1.5 * omni as f64,
        "expected ~2× data frames under reuse: {dir} vs {omni}"
    );
}
