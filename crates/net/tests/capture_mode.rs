//! End-to-end tests of the distance-ratio capture extension.

use dirca_mac::Scheme;
use dirca_net::{run, SimConfig};
use dirca_radio::ReceptionMode;
use dirca_sim::SimDuration;
use dirca_topology::fixtures;

fn config(reception: ReceptionMode, seed: u64) -> SimConfig {
    SimConfig::new(Scheme::OrtsOcts)
        .with_reception(reception)
        .with_seed(seed)
        .with_warmup(SimDuration::from_millis(100))
        .with_measure(SimDuration::from_secs(3))
}

#[test]
fn capture_never_hurts_throughput() {
    // Capture can only rescue frames that collision-on-overlap would have
    // destroyed, so aggregate throughput must not drop on a contended
    // topology.
    let topo = fixtures::hidden_terminal();
    let plain = run(&topo, &config(ReceptionMode::Omni, 3));
    let capture = run(&topo, &config(ReceptionMode::Capture { ratio: 1.0 }, 3));
    assert!(
        capture.aggregate_throughput_bps() >= 0.95 * plain.aggregate_throughput_bps(),
        "capture collapsed throughput: {} vs {}",
        capture.aggregate_throughput_bps(),
        plain.aggregate_throughput_bps()
    );
}

#[test]
fn aggressive_capture_rescues_hidden_terminal_frames() {
    // On the A—B—C line, B's receptions from a near sender often survive a
    // far hidden terminal under ratio-1 capture; the collision ratio must
    // not exceed the no-capture baseline.
    let topo = fixtures::line(3, 0.4, 1.0); // A at 0.4 from B, C at 0.8 from B... all in range
    let plain = run(&topo, &config(ReceptionMode::Omni, 9));
    let capture = run(&topo, &config(ReceptionMode::Capture { ratio: 1.0 }, 9));
    let base = plain.collision_ratio().unwrap_or(0.0);
    let with_capture = capture.collision_ratio().unwrap_or(0.0);
    assert!(
        with_capture <= base + 0.05,
        "capture raised collisions: {with_capture} vs {base}"
    );
}

#[test]
fn strict_capture_ratio_approaches_plain_behavior() {
    // With an enormous ratio nothing is ever captured: results must match
    // the omni collision-on-overlap model exactly (same seeds, same
    // dynamics).
    let topo = fixtures::hidden_terminal();
    let plain = run(&topo, &config(ReceptionMode::Omni, 5));
    let strict = run(&topo, &config(ReceptionMode::Capture { ratio: 1e12 }, 5));
    assert_eq!(plain.events_processed(), strict.events_processed());
    assert_eq!(plain.packets_acked(), strict.packets_acked());
}
