//! Determinism: two same-seed runs on a random ring topology must produce
//! byte-identical frame traces and identical counters.
//!
//! This is the repository's guard against ordering-sensitive state sneaking
//! back into the simulation path (e.g. hash-map iteration, thread timing,
//! or entropy-seeded RNGs): any such regression shows up as a trace
//! divergence long before it would be visible in aggregate statistics.

use dirca_mac::Scheme;
use dirca_net::{NetWorld, SimConfig};
use dirca_sim::rng::stream_rng;
use dirca_sim::{SimTime, Simulation};
use dirca_topology::RingSpec;

/// Runs one simulation on a seeded random ring and returns the full frame
/// trace serialized to bytes, plus headline counters.
fn ring_run(scheme: Scheme, seed: u64) -> (Vec<u8>, u64, u64) {
    let spec = RingSpec::paper(5, 1.0);
    let mut topo_rng = stream_rng(seed, 0xA11CE);
    let topology = spec.generate(&mut topo_rng).expect("ring topology");
    let config = SimConfig::new(scheme)
        .with_seed(seed)
        .with_beamwidth_degrees(30.0);
    let mut world = NetWorld::build(&topology, &config);
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    sim.run_until(SimTime::from_millis(400));
    let events = sim.events_processed();
    let world = sim.into_world();
    let trace = world.trace().expect("trace enabled");
    let acked: u64 = world
        .macs()
        .iter()
        .map(|m| m.counters().packets_acked)
        .sum();
    (format!("{trace:?}").into_bytes(), events, acked)
}

#[test]
fn same_seed_ring_runs_are_byte_identical() {
    for scheme in Scheme::ALL {
        let (trace_a, events_a, acked_a) = ring_run(scheme, 7);
        let (trace_b, events_b, acked_b) = ring_run(scheme, 7);
        assert!(!trace_a.is_empty(), "{scheme}: empty trace");
        assert_eq!(events_a, events_b, "{scheme}: event counts diverged");
        assert_eq!(acked_a, acked_b, "{scheme}: throughput diverged");
        assert_eq!(trace_a, trace_b, "{scheme}: traces are not byte-identical");
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    let (trace_a, ..) = ring_run(Scheme::DrtsDcts, 7);
    let (trace_b, ..) = ring_run(Scheme::DrtsDcts, 8);
    assert_ne!(trace_a, trace_b, "seed must matter");
}
