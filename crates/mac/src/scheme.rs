//! The three collision-avoidance schemes compared in the paper.

use std::fmt;
use std::str::FromStr;

use crate::FrameKind;

/// Which frames of the four-way handshake are transmitted directionally.
///
/// # Example
///
/// ```
/// use dirca_mac::{FrameKind, Scheme};
///
/// assert!(!Scheme::OrtsOcts.is_directional(FrameKind::Rts));
/// assert!(Scheme::DrtsDcts.is_directional(FrameKind::Cts));
/// assert!(!Scheme::DrtsOcts.is_directional(FrameKind::Cts));
/// assert!(Scheme::DrtsOcts.is_directional(FrameKind::Data));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// All transmissions omni-directional (standard IEEE 802.11 DCF).
    OrtsOcts,
    /// All transmissions directional: maximal spatial reuse.
    DrtsDcts,
    /// Directional RTS/DATA/ACK with omni-directional CTS: conservative
    /// collision avoidance around the receiver.
    DrtsOcts,
}

impl Scheme {
    /// All three schemes, in the order the paper presents them.
    pub const ALL: [Scheme; 3] = [Scheme::OrtsOcts, Scheme::DrtsDcts, Scheme::DrtsOcts];

    /// Whether frames of `kind` are beamformed under this scheme.
    pub fn is_directional(self, kind: FrameKind) -> bool {
        match self {
            Scheme::OrtsOcts => false,
            Scheme::DrtsDcts => true,
            Scheme::DrtsOcts => kind != FrameKind::Cts,
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::OrtsOcts => "ORTS-OCTS",
            Scheme::DrtsDcts => "DRTS-DCTS",
            Scheme::DrtsOcts => "DRTS-OCTS",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`Scheme`] from an unknown string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError(String);

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheme {:?} (expected orts-octs, drts-dcts, or drts-octs)",
            self.0
        )
    }
}

impl std::error::Error for ParseSchemeError {}

impl FromStr for Scheme {
    type Err = ParseSchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "orts-octs" | "ortsocts" | "802.11" | "omni" => Ok(Scheme::OrtsOcts),
            "drts-dcts" | "drtsdcts" | "directional" => Ok(Scheme::DrtsDcts),
            "drts-octs" | "drtsocts" | "hybrid" => Ok(Scheme::DrtsOcts),
            _ => Err(ParseSchemeError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orts_octs_never_directional() {
        for kind in [
            FrameKind::Rts,
            FrameKind::Cts,
            FrameKind::Data,
            FrameKind::Ack,
        ] {
            assert!(!Scheme::OrtsOcts.is_directional(kind));
        }
    }

    #[test]
    fn drts_dcts_always_directional() {
        for kind in [
            FrameKind::Rts,
            FrameKind::Cts,
            FrameKind::Data,
            FrameKind::Ack,
        ] {
            assert!(Scheme::DrtsDcts.is_directional(kind));
        }
    }

    #[test]
    fn drts_octs_only_cts_is_omni() {
        assert!(Scheme::DrtsOcts.is_directional(FrameKind::Rts));
        assert!(!Scheme::DrtsOcts.is_directional(FrameKind::Cts));
        assert!(Scheme::DrtsOcts.is_directional(FrameKind::Data));
        assert!(Scheme::DrtsOcts.is_directional(FrameKind::Ack));
    }

    #[test]
    fn parse_round_trips() {
        for s in Scheme::ALL {
            let text = s.to_string();
            assert_eq!(text.parse::<Scheme>().unwrap(), s);
        }
        assert_eq!("802.11".parse::<Scheme>().unwrap(), Scheme::OrtsOcts);
        assert!("nonsense".parse::<Scheme>().is_err());
    }

    #[test]
    fn parse_error_displays() {
        let err = "xyz".parse::<Scheme>().unwrap_err();
        assert!(format!("{err}").contains("xyz"));
    }
}
