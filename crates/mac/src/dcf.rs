//! The DCF protocol engine.

use std::collections::{BTreeMap, VecDeque};

use dirca_radio::NodeId;
use dirca_sim::{SimDuration, SimTime, TimerGeneration, TimerSlot};

use crate::{Backoff, DataPacket, Dot11Params, Frame, FrameKind, MacCounters, Nav, Scheme};

/// The MAC's logical timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// DIFS/EIFS wait plus backoff countdown; fires when the node may send
    /// its RTS.
    Backoff,
    /// SIFS gap before a response frame (CTS, DATA, or ACK).
    Sifs,
    /// Waiting for the CTS answering our RTS.
    CtsTimeout,
    /// Waiting (as receiver) for the DATA frame after our CTS.
    DataTimeout,
    /// Waiting for the ACK answering our DATA frame.
    AckTimeout,
    /// The NAV reservation we honour has expired.
    NavExpire,
}

impl TimerKind {
    const COUNT: usize = 6;

    /// Every timer kind, in `index()` order.
    pub const ALL: [TimerKind; TimerKind::COUNT] = [
        TimerKind::Backoff,
        TimerKind::Sifs,
        TimerKind::CtsTimeout,
        TimerKind::DataTimeout,
        TimerKind::AckTimeout,
        TimerKind::NavExpire,
    ];

    /// A stable snake_case name, used as the `timer` field of trace
    /// records and as a metrics label.
    pub fn label(self) -> &'static str {
        match self {
            TimerKind::Backoff => "backoff",
            TimerKind::Sifs => "sifs",
            TimerKind::CtsTimeout => "cts_timeout",
            TimerKind::DataTimeout => "data_timeout",
            TimerKind::AckTimeout => "ack_timeout",
            TimerKind::NavExpire => "nav_expire",
        }
    }

    /// The inverse of [`TimerKind::label`].
    pub fn from_label(label: &str) -> Option<TimerKind> {
        TimerKind::ALL.into_iter().find(|k| k.label() == label)
    }

    fn index(self) -> usize {
        match self {
            TimerKind::Backoff => 0,
            TimerKind::Sifs => 1,
            TimerKind::CtsTimeout => 2,
            TimerKind::DataTimeout => 3,
            TimerKind::AckTimeout => 4,
            TimerKind::NavExpire => 5,
        }
    }
}

/// Services the MAC requires from its host (the network layer in
/// simulation, or a mock in tests).
pub trait MacContext {
    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Physical carrier sense: is signal energy arriving, or are we
    /// transmitting?
    fn carrier_busy(&self) -> bool;

    /// Put `frame` on the air. `directional` selects a beam aimed at
    /// `frame.dst` (the host resolves positions); otherwise the
    /// transmission is omni-directional. The host must deliver a
    /// [`DcfMac::on_tx_done`] when the frame leaves the air.
    fn transmit(&mut self, frame: Frame, directional: bool);

    /// Schedule a [`DcfMac::on_timer`] callback carrying `(kind, gen)`
    /// after `delay`.
    fn schedule_timer(&mut self, kind: TimerKind, gen: TimerGeneration, delay: SimDuration);

    /// Sample a backoff draw uniformly from `[0, cw]`.
    fn draw_backoff_slots(&mut self, cw: u32) -> u32;

    /// A DATA frame addressed to this node was decoded; hand its payload to
    /// the upper layer.
    fn deliver(&mut self, frame: &Frame);

    /// The MAC finished serving `packet`: acknowledged (`success`) or
    /// dropped after exhausting retries.
    fn packet_done(&mut self, packet: DataPacket, success: bool);
}

/// Tunables beyond the PHY parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacConfig {
    /// RTS retry limit (station short retry count), 7 in IEEE 802.11.
    pub short_retry_limit: u32,
    /// DATA retry limit (station long retry count), 4 in IEEE 802.11.
    pub long_retry_limit: u32,
    /// Apply EIFS after corrupted receptions (IEEE 802.11 §9.2.10).
    pub use_eifs: bool,
    /// Receivers stay silent on RTS while their NAV is set (standard
    /// behaviour; disabling it is an ablation knob).
    pub respect_nav_on_rts: bool,
    /// Ko-style adaptive RTS (scheme two of Ko et al., INFOCOM 2000):
    /// retries after a failed directional RTS fall back to omni-directional
    /// RTS transmissions, trading spatial reuse for a better chance of
    /// silencing whatever destroyed the first attempt. Only meaningful for
    /// the directional schemes.
    pub omni_rts_on_retry: bool,
    /// dot11RTSThreshold: frames of more than this many bytes use the
    /// RTS/CTS handshake; shorter frames use two-way basic access
    /// (DATA/ACK). `0` (the default here) means every frame is protected
    /// by RTS/CTS, as in the paper's experiments; `u32::MAX` disables the
    /// handshake entirely.
    pub rts_threshold_bytes: u32,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            short_retry_limit: 7,
            long_retry_limit: 4,
            use_eifs: true,
            respect_nav_on_rts: true,
            omni_rts_on_retry: false,
            rts_threshold_bytes: 0,
        }
    }
}

/// Protocol state. Transmitting states await [`DcfMac::on_tx_done`];
/// waiting states hold a timeout; SIFS states hold the SIFS timer.
#[derive(Debug, Clone, PartialEq)]
enum State {
    /// Nothing to send, not engaged in a peer's exchange.
    Idle,
    /// A packet is pending; deferring / counting down backoff.
    Contend,
    /// Our RTS is on the air.
    TxRts,
    /// RTS sent; CTS timeout running.
    WaitCts,
    /// CTS received; SIFS gap before our DATA.
    SifsData,
    /// Our DATA frame is on the air.
    TxData,
    /// DATA sent; ACK timeout running.
    WaitAck,
    /// Decoded an RTS addressed to us; SIFS gap before our CTS.
    SifsCts {
        /// The RTS being answered.
        rts: Frame,
    },
    /// Our CTS is on the air.
    TxCts {
        /// Handshake peer (the RTS sender).
        peer: NodeId,
        /// Announced data size, for the DATA timeout.
        data_bytes: u32,
    },
    /// CTS sent; waiting for the DATA frame.
    WaitData {
        /// Handshake peer.
        peer: NodeId,
    },
    /// Decoded a DATA frame addressed to us; SIFS gap before our ACK.
    SifsAck {
        /// The DATA frame being acknowledged.
        data: Frame,
    },
    /// Our ACK is on the air.
    TxAck,
}

/// One node's IEEE 802.11 DCF engine (with the scheme's directional
/// transmit rules).
///
/// See the crate-level docs for the host protocol. In short, the host must
/// call:
///
/// * [`DcfMac::on_medium_busy`] / [`DcfMac::on_medium_idle`] on physical
///   carrier-sense edges,
/// * [`DcfMac::on_frame_received`] for every cleanly decoded frame,
/// * [`DcfMac::on_rx_corrupted`] when a locked frame was destroyed,
/// * [`DcfMac::on_tx_done`] when a requested transmission leaves the air,
/// * [`DcfMac::on_timer`] when a scheduled timer fires.
#[derive(Debug)]
pub struct DcfMac {
    id: NodeId,
    scheme: Scheme,
    params: Dot11Params,
    config: MacConfig,
    state: State,
    queue: VecDeque<DataPacket>,
    current: Option<DataPacket>,
    service_start: SimTime,
    short_retries: u32,
    long_retries: u32,
    backoff: Backoff,
    nav: Nav,
    timers: [TimerSlot; TimerKind::COUNT],
    /// When the running backoff timer was armed and the IFS it began with.
    backoff_armed_at: Option<(SimTime, SimDuration)>,
    eifs_pending: bool,
    /// Receive dedup cache: last data sequence number seen per sender
    /// (IEEE 802.11 duplicate detection; dups are re-ACKed, not
    /// re-delivered).
    rx_last_seq: BTreeMap<NodeId, u64>,
    counters: MacCounters,
}

impl DcfMac {
    /// Creates an idle MAC for node `id` running `scheme`.
    pub fn new(id: NodeId, scheme: Scheme, params: Dot11Params, config: MacConfig) -> Self {
        let backoff = Backoff::new(params.cw_min, params.cw_max);
        DcfMac {
            id,
            scheme,
            params,
            config,
            state: State::Idle,
            queue: VecDeque::new(),
            current: None,
            service_start: SimTime::ZERO,
            short_retries: 0,
            long_retries: 0,
            backoff,
            nav: Nav::new(),
            timers: Default::default(),
            backoff_armed_at: None,
            eifs_pending: false,
            rx_last_seq: BTreeMap::new(),
            counters: MacCounters::new(),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The scheme this MAC runs.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The virtual carrier-sense state (read-only; used by the runtime
    /// invariant auditors to cross-check transmit decisions against the
    /// NAV).
    pub fn nav(&self) -> &Nav {
        &self.nav
    }

    /// The behaviour knobs this MAC was built with.
    pub fn config(&self) -> &MacConfig {
        &self.config
    }

    /// The statistics counters.
    pub fn counters(&self) -> &MacCounters {
        &self.counters
    }

    /// Zeroes the statistics counters (used to discard warm-up transients).
    pub fn reset_counters(&mut self) {
        self.counters = MacCounters::new();
    }

    /// Packets queued behind the one in service.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the MAC is serving or holding any packet.
    pub fn has_backlog(&self) -> bool {
        self.current.is_some() || !self.queue.is_empty()
    }

    /// Accepts a packet from the upper layer.
    pub fn enqueue(&mut self, packet: DataPacket, ctx: &mut impl MacContext) {
        self.queue.push_back(packet);
        if self.state == State::Idle {
            self.state = State::Contend;
            self.try_resume(ctx);
        }
    }

    /// Physical carrier sense went busy: freeze any running backoff.
    pub fn on_medium_busy(&mut self, ctx: &mut impl MacContext) {
        if self.state != State::Contend {
            return;
        }
        if let Some((armed_at, ifs)) = self.backoff_armed_at.take() {
            // Credit fully elapsed idle slots counted after the IFS.
            let elapsed = ctx.now().saturating_duration_since(armed_at);
            if let Some(past_ifs) = elapsed.checked_sub(ifs) {
                let slots = (past_ifs.as_nanos() / self.params.slot.as_nanos()) as u32;
                self.backoff.consume(slots);
            }
            self.timer_mut(TimerKind::Backoff).cancel();
        }
    }

    /// Physical carrier sense went idle: resume contention if appropriate.
    pub fn on_medium_idle(&mut self, ctx: &mut impl MacContext) {
        self.try_resume(ctx);
    }

    /// A frame was decoded cleanly at this node.
    pub fn on_frame_received(&mut self, frame: Frame, ctx: &mut impl MacContext) {
        // A correct reception cancels any pending EIFS penalty.
        self.eifs_pending = false;

        if frame.dst != self.id {
            // Overheard: honour its reservation.
            self.nav.reserve(ctx.now(), frame.duration);
            return;
        }
        match frame.kind {
            FrameKind::Rts => self.on_rts(frame, ctx),
            FrameKind::Cts => self.on_cts(frame, ctx),
            FrameKind::Data => self.on_data(frame, ctx),
            FrameKind::Ack => self.on_ack(frame, ctx),
        }
    }

    /// A locked frame was destroyed by interference: arm the EIFS penalty.
    pub fn on_rx_corrupted(&mut self, _ctx: &mut impl MacContext) {
        if self.config.use_eifs {
            self.eifs_pending = true;
        }
    }

    /// Our transmission left the air.
    pub fn on_tx_done(&mut self, ctx: &mut impl MacContext) {
        match std::mem::replace(&mut self.state, State::Idle) {
            State::TxRts => {
                self.state = State::WaitCts;
                self.arm(ctx, TimerKind::CtsTimeout, self.params.cts_timeout());
            }
            State::TxCts { peer, data_bytes } => {
                self.state = State::WaitData { peer };
                self.arm(
                    ctx,
                    TimerKind::DataTimeout,
                    self.params.data_timeout_for(data_bytes),
                );
            }
            State::TxData => {
                self.state = State::WaitAck;
                self.arm(ctx, TimerKind::AckTimeout, self.params.ack_timeout());
            }
            State::TxAck => {
                // Receiver-side exchange complete.
                self.state = State::Contend;
                self.try_resume(ctx);
            }
            other => panic!("on_tx_done in non-transmitting state {other:?}"),
        }
    }

    /// Whether an event carrying `(kind, gen)` would be accepted as the
    /// live firing of that timer. Useful for hosts that want to prune
    /// cancelled timers instead of delivering them.
    pub fn is_timer_live(&self, kind: TimerKind, gen: TimerGeneration) -> bool {
        self.timer(kind).is_armed() && {
            // Probe without disarming: clone the slot.
            let mut probe = self.timer(kind).clone();
            probe.fires(gen)
        }
    }

    /// A scheduled timer fired. Stale generations are ignored.
    pub fn on_timer(&mut self, kind: TimerKind, gen: TimerGeneration, ctx: &mut impl MacContext) {
        if !self.timer_mut(kind).fires(gen) {
            return;
        }
        match kind {
            TimerKind::Backoff => self.on_backoff_done(ctx),
            TimerKind::Sifs => self.on_sifs_done(ctx),
            TimerKind::CtsTimeout => self.on_cts_timeout(ctx),
            TimerKind::DataTimeout => self.on_data_timeout(ctx),
            TimerKind::AckTimeout => self.on_ack_timeout(ctx),
            TimerKind::NavExpire => self.try_resume(ctx),
        }
    }

    // ------------------------------------------------------------------
    // Contention.

    /// If contending and the medium is free (physically and virtually),
    /// (re)arm the IFS + residual-backoff timer; if only the NAV blocks us,
    /// arm a wake-up at its expiry.
    fn try_resume(&mut self, ctx: &mut impl MacContext) {
        if self.state != State::Contend {
            return;
        }
        if self.current.is_none() {
            match self.queue.pop_front() {
                Some(pkt) => {
                    self.current = Some(pkt);
                    self.service_start = ctx.now();
                    self.short_retries = 0;
                    self.long_retries = 0;
                }
                None => {
                    self.state = State::Idle;
                    return;
                }
            }
        }
        let now = ctx.now();
        if ctx.carrier_busy() {
            // A busy edge will bring us back.
            return;
        }
        if self.nav.is_busy(now) {
            let gen = self.timer_mut(TimerKind::NavExpire).arm();
            ctx.schedule_timer(TimerKind::NavExpire, gen, self.nav.until() - now);
            return;
        }
        let remaining = {
            let backoff = &mut self.backoff;
            backoff.ensure_drawn(|cw| ctx.draw_backoff_slots(cw))
        };
        let ifs = if self.eifs_pending {
            self.params.eifs()
        } else {
            self.params.difs
        };
        let delay = ifs + self.params.slot * u64::from(remaining);
        self.backoff_armed_at = Some((now, ifs));
        self.arm(ctx, TimerKind::Backoff, delay);
    }

    fn on_backoff_done(&mut self, ctx: &mut impl MacContext) {
        debug_assert_eq!(self.state, State::Contend, "backoff fired outside Contend");
        self.backoff_armed_at = None;
        self.backoff.complete();
        self.eifs_pending = false;
        // panic-path: state-machine invariant — Contend is only entered
        // with a packet in service (`current` set by enqueue/try_resume).
        let pkt = self
            .current
            .expect("backoff completed without a packet in service");
        if pkt.bytes > self.config.rts_threshold_bytes {
            let rts = Frame::rts(self.id, pkt.dst, pkt.bytes, &self.params);
            self.counters.rts_tx += 1;
            self.state = State::TxRts;
            let directional = self.scheme.is_directional(FrameKind::Rts)
                && !(self.config.omni_rts_on_retry && self.short_retries > 0);
            ctx.transmit(rts, directional);
        } else {
            // Basic access: the data frame goes out unprotected.
            let data = Frame::data(pkt, &self.params);
            self.counters.data_tx += 1;
            self.state = State::TxData;
            ctx.transmit(data, self.scheme.is_directional(FrameKind::Data));
        }
    }

    // ------------------------------------------------------------------
    // Sender side.

    fn on_cts(&mut self, frame: Frame, ctx: &mut impl MacContext) {
        let expected_peer = self.current.map(|p| p.dst);
        if self.state == State::WaitCts && Some(frame.src) == expected_peer {
            self.timer_mut(TimerKind::CtsTimeout).cancel();
            self.short_retries = 0;
            self.state = State::SifsData;
            self.arm(ctx, TimerKind::Sifs, self.params.sifs);
        }
        // Stale or misdirected CTS addressed to us: ignore.
    }

    fn on_ack(&mut self, frame: Frame, ctx: &mut impl MacContext) {
        let expected_peer = self.current.map(|p| p.dst);
        if self.state == State::WaitAck && Some(frame.src) == expected_peer {
            self.timer_mut(TimerKind::AckTimeout).cancel();
            // panic-path: state-machine invariant — WaitAck holds the packet
            // whose DATA was just acknowledged.
            let pkt = self.current.take().expect("WaitAck without packet");
            self.counters.packets_acked += 1;
            self.counters.data_acked_bytes += u64::from(pkt.bytes);
            self.counters.service_delay_total +=
                ctx.now().saturating_duration_since(self.service_start);
            self.counters.e2e_delay_total += ctx.now().saturating_duration_since(pkt.created);
            self.backoff.on_success();
            ctx.packet_done(pkt, true);
            self.state = State::Contend;
            self.try_resume(ctx);
        }
    }

    fn on_cts_timeout(&mut self, ctx: &mut impl MacContext) {
        debug_assert_eq!(self.state, State::WaitCts);
        self.counters.cts_timeouts += 1;
        self.short_retries += 1;
        if self.short_retries > self.config.short_retry_limit {
            self.drop_current(ctx);
        } else {
            self.backoff.on_failure();
            self.state = State::Contend;
            self.try_resume(ctx);
        }
    }

    fn on_ack_timeout(&mut self, ctx: &mut impl MacContext) {
        debug_assert_eq!(self.state, State::WaitAck);
        self.counters.ack_timeouts += 1;
        self.long_retries += 1;
        if self.long_retries > self.config.long_retry_limit {
            self.drop_current(ctx);
        } else {
            self.backoff.on_failure();
            self.state = State::Contend;
            self.try_resume(ctx);
        }
    }

    fn drop_current(&mut self, ctx: &mut impl MacContext) {
        // panic-path: state-machine invariant — drop_current is only called
        // from states that hold a packet in service.
        let pkt = self.current.take().expect("drop without packet");
        self.counters.packets_dropped += 1;
        self.backoff.on_success(); // window resets after a drop, per 802.11
        ctx.packet_done(pkt, false);
        self.state = State::Contend;
        self.try_resume(ctx);
    }

    // ------------------------------------------------------------------
    // Receiver side.

    fn on_rts(&mut self, frame: Frame, ctx: &mut impl MacContext) {
        let interruptible = matches!(self.state, State::Idle | State::Contend);
        if !interruptible {
            return; // engaged in another exchange
        }
        if self.config.respect_nav_on_rts && self.nav.is_busy(ctx.now()) {
            return; // virtual carrier says the medium is reserved
        }
        // Freeze contention (any running backoff was already frozen by the
        // busy edge of the RTS itself) and answer after SIFS.
        self.timer_mut(TimerKind::Backoff).cancel();
        self.backoff_armed_at = None;
        self.state = State::SifsCts { rts: frame };
        self.arm(ctx, TimerKind::Sifs, self.params.sifs);
    }

    fn on_data(&mut self, frame: Frame, ctx: &mut impl MacContext) {
        match self.state {
            State::WaitData { peer } if peer == frame.src => {
                self.timer_mut(TimerKind::DataTimeout).cancel();
                self.deliver_unless_duplicate(&frame, ctx);
                self.state = State::SifsAck { data: frame };
                self.arm(ctx, TimerKind::Sifs, self.params.sifs);
            }
            // Unsolicited data addressed to us: a basic-access (no-RTS)
            // transmission. Answer with an ACK after SIFS if we are not
            // engaged in our own exchange.
            State::Idle | State::Contend => {
                self.timer_mut(TimerKind::Backoff).cancel();
                self.backoff_armed_at = None;
                self.deliver_unless_duplicate(&frame, ctx);
                self.state = State::SifsAck { data: frame };
                self.arm(ctx, TimerKind::Sifs, self.params.sifs);
            }
            _ => {}
        }
    }

    /// IEEE 802.11 duplicate detection: a retransmission whose ACK was
    /// lost is ACKed again but not handed up a second time.
    fn deliver_unless_duplicate(&mut self, frame: &Frame, ctx: &mut impl MacContext) {
        let dup = match frame.payload {
            Some(pkt) => self.rx_last_seq.insert(frame.src, pkt.seq) == Some(pkt.seq),
            None => false,
        };
        if dup {
            self.counters.duplicates_dropped += 1;
        } else {
            self.counters.data_delivered += 1;
            self.counters.data_delivered_bytes += u64::from(frame.payload_bytes);
            ctx.deliver(frame);
        }
    }

    fn on_sifs_done(&mut self, ctx: &mut impl MacContext) {
        match std::mem::replace(&mut self.state, State::Idle) {
            State::SifsCts { rts } => {
                let cts = Frame::cts(&rts, &self.params);
                self.counters.cts_tx += 1;
                self.state = State::TxCts {
                    peer: rts.src,
                    data_bytes: rts.payload_bytes,
                };
                ctx.transmit(cts, self.scheme.is_directional(FrameKind::Cts));
            }
            State::SifsData => {
                // panic-path: state-machine invariant — SifsData holds the
                // packet whose CTS was just received.
                let pkt = self.current.expect("SifsData without packet");
                let data = Frame::data(pkt, &self.params);
                self.counters.data_tx += 1;
                self.state = State::TxData;
                ctx.transmit(data, self.scheme.is_directional(FrameKind::Data));
            }
            State::SifsAck { data } => {
                let ack = Frame::ack(&data, &self.params);
                self.counters.ack_tx += 1;
                self.state = State::TxAck;
                ctx.transmit(ack, self.scheme.is_directional(FrameKind::Ack));
            }
            other => panic!("SIFS fired in state {other:?}"),
        }
    }

    fn on_data_timeout(&mut self, ctx: &mut impl MacContext) {
        debug_assert!(matches!(self.state, State::WaitData { .. }));
        self.counters.data_timeouts += 1;
        self.state = State::Contend;
        self.try_resume(ctx);
    }

    // ------------------------------------------------------------------

    /// The slot backing `kind`.
    fn timer(&self, kind: TimerKind) -> &TimerSlot {
        // panic-path: infallible — `TimerKind::index` maps the 6 variants to
        // 0..COUNT, the exact length of the `timers` array.
        &self.timers[kind.index()]
    }

    /// Mutable access to the slot backing `kind`.
    fn timer_mut(&mut self, kind: TimerKind) -> &mut TimerSlot {
        // panic-path: infallible — see `timer`.
        &mut self.timers[kind.index()]
    }

    fn arm(&mut self, ctx: &mut impl MacContext, kind: TimerKind, delay: SimDuration) {
        let gen = self.timer_mut(kind).arm();
        ctx.schedule_timer(kind, gen, delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted host: records transmissions and timers; the test advances
    /// time and fires timers by hand.
    struct MockCtx {
        now: SimTime,
        busy: bool,
        transmitted: Vec<(SimTime, Frame, bool)>,
        timers: Vec<(TimerKind, TimerGeneration, SimTime)>,
        delivered: Vec<Frame>,
        done: Vec<(DataPacket, bool)>,
        draw: u32,
        /// Every contention window the MAC drew from, in order — lets
        /// tests pin the exponential-backoff progression and its reset.
        cw_draws: Vec<u32>,
    }

    impl MockCtx {
        fn new() -> Self {
            MockCtx {
                now: SimTime::ZERO,
                busy: false,
                transmitted: Vec::new(),
                timers: Vec::new(),
                delivered: Vec::new(),
                done: Vec::new(),
                draw: 0,
                cw_draws: Vec::new(),
            }
        }

        /// Pops the earliest scheduled *live* timer (dropping cancelled
        /// ones) and fires it on `mac`, advancing the clock to its deadline.
        fn fire_next_timer(&mut self, mac: &mut DcfMac) -> TimerKind {
            loop {
                let (idx, _) = self
                    .timers
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, _, at))| *at)
                    .expect("no timer scheduled");
                let (kind, gen, at) = self.timers.remove(idx);
                if !mac.is_timer_live(kind, gen) {
                    continue; // cancelled or superseded
                }
                assert!(at >= self.now, "live timer in the past");
                self.now = at;
                mac.on_timer(kind, gen, self);
                return kind;
            }
        }

        fn last_tx(&self) -> &(SimTime, Frame, bool) {
            self.transmitted.last().expect("nothing transmitted")
        }
    }

    impl MacContext for MockCtx {
        fn now(&self) -> SimTime {
            self.now
        }
        fn carrier_busy(&self) -> bool {
            self.busy
        }
        fn transmit(&mut self, frame: Frame, directional: bool) {
            self.transmitted.push((self.now, frame, directional));
        }
        fn schedule_timer(&mut self, kind: TimerKind, gen: TimerGeneration, delay: SimDuration) {
            self.timers.push((kind, gen, self.now + delay));
        }
        fn draw_backoff_slots(&mut self, cw: u32) -> u32 {
            self.cw_draws.push(cw);
            self.draw.min(cw)
        }
        fn deliver(&mut self, frame: &Frame) {
            self.delivered.push(*frame);
        }
        fn packet_done(&mut self, packet: DataPacket, success: bool) {
            self.done.push((packet, success));
        }
    }

    fn mac(scheme: Scheme) -> DcfMac {
        DcfMac::new(
            NodeId(0),
            scheme,
            Dot11Params::dsss_2mbps(),
            MacConfig::default(),
        )
    }

    fn pkt(dst: usize) -> DataPacket {
        DataPacket::new(1, NodeId(0), NodeId(dst), 1460, SimTime::ZERO)
    }

    fn params() -> Dot11Params {
        Dot11Params::dsss_2mbps()
    }

    /// Drives a full successful sender-side handshake and returns the ctx.
    fn run_sender_success(scheme: Scheme) -> (DcfMac, MockCtx) {
        let mut m = mac(scheme);
        let mut ctx = MockCtx::new();
        let p = params();

        m.enqueue(pkt(1), &mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        let (_, rts, _) = *ctx.last_tx();
        assert_eq!(rts.kind, FrameKind::Rts);

        // RTS leaves the air.
        ctx.now += p.frame_airtime(&rts);
        m.on_tx_done(&mut ctx);

        // CTS arrives.
        ctx.now += p.sifs + p.frame_airtime_bytes(p.cts_bytes) + p.propagation_delay * 2;
        let cts = Frame::cts(&rts, &p);
        m.on_frame_received(cts, &mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Sifs);
        let (_, data, _) = *ctx.last_tx();
        assert_eq!(data.kind, FrameKind::Data);

        ctx.now += p.frame_airtime(&data);
        m.on_tx_done(&mut ctx);

        // ACK arrives.
        ctx.now += p.sifs + p.frame_airtime_bytes(p.ack_bytes) + p.propagation_delay * 2;
        let ack = Frame::ack(&data, &p);
        m.on_frame_received(ack, &mut ctx);
        (m, ctx)
    }

    #[test]
    fn timer_labels_round_trip() {
        for kind in TimerKind::ALL {
            assert_eq!(TimerKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(TimerKind::from_label("difs"), None);
        assert_eq!(TimerKind::ALL.len(), TimerKind::COUNT);
    }

    #[test]
    fn sender_completes_four_way_handshake() {
        let (m, ctx) = run_sender_success(Scheme::OrtsOcts);
        assert_eq!(ctx.done.len(), 1);
        assert!(ctx.done[0].1, "packet must be reported successful");
        let c = m.counters();
        assert_eq!(c.rts_tx, 1);
        assert_eq!(c.data_tx, 1);
        assert_eq!(c.packets_acked, 1);
        assert_eq!(c.data_acked_bytes, 1460);
        assert_eq!(c.cts_timeouts, 0);
        assert!(c.mean_service_delay().unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn first_access_waits_difs_only_when_zero_backoff() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        ctx.draw = 0;
        m.enqueue(pkt(1), &mut ctx);
        let (_, _, at) = ctx.timers[0];
        assert_eq!(at, SimTime::ZERO + params().difs);
    }

    #[test]
    fn backoff_slots_delay_the_rts() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        ctx.draw = 5;
        m.enqueue(pkt(1), &mut ctx);
        let (_, _, at) = ctx.timers[0];
        assert_eq!(at, SimTime::ZERO + params().difs + params().slot * 5);
    }

    #[test]
    fn scheme_controls_frame_directionality() {
        // ORTS-OCTS: RTS is omni.
        let (_, ctx) = run_sender_success(Scheme::OrtsOcts);
        assert!(ctx.transmitted.iter().all(|&(_, _, dir)| !dir));
        // DRTS-DCTS: everything directional.
        let (_, ctx) = run_sender_success(Scheme::DrtsDcts);
        assert!(ctx.transmitted.iter().all(|&(_, _, dir)| dir));
        // DRTS-OCTS sender frames (RTS, DATA) are directional.
        let (_, ctx) = run_sender_success(Scheme::DrtsOcts);
        for (_, f, dir) in &ctx.transmitted {
            assert_eq!(*dir, f.kind != FrameKind::Cts);
        }
    }

    #[test]
    fn receiver_answers_rts_and_acks_data() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();

        let rts = Frame::rts(NodeId(5), NodeId(0), 1460, &p);
        m.on_frame_received(rts, &mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Sifs);
        let (_, cts, _) = *ctx.last_tx();
        assert_eq!(cts.kind, FrameKind::Cts);
        assert_eq!(cts.dst, NodeId(5));

        ctx.now += p.frame_airtime(&cts);
        m.on_tx_done(&mut ctx);

        let pkt = DataPacket::new(3, NodeId(5), NodeId(0), 1460, SimTime::ZERO);
        let data = Frame::data(pkt, &p);
        ctx.now += p.sifs + p.frame_airtime(&data) + p.propagation_delay * 2;
        m.on_frame_received(data, &mut ctx);
        assert_eq!(ctx.delivered.len(), 1);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Sifs);
        let (_, ack, _) = *ctx.last_tx();
        assert_eq!(ack.kind, FrameKind::Ack);
        assert_eq!(ack.dst, NodeId(5));

        ctx.now += p.frame_airtime(&ack);
        m.on_tx_done(&mut ctx);
        assert_eq!(m.counters().data_delivered, 1);
        assert_eq!(m.counters().data_delivered_bytes, 1460);
    }

    #[test]
    fn receiver_ignores_rts_when_nav_busy() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();

        // Overhear a frame reserving the medium.
        let foreign = Frame::rts(NodeId(7), NodeId(8), 1460, &p);
        m.on_frame_received(foreign, &mut ctx);
        // Now an RTS addressed to us arrives inside the reservation.
        let rts = Frame::rts(NodeId(5), NodeId(0), 1460, &p);
        ctx.now += SimDuration::from_micros(10);
        m.on_frame_received(rts, &mut ctx);
        assert!(ctx.timers.is_empty(), "no CTS may be scheduled under NAV");
        assert!(ctx.transmitted.is_empty());
    }

    #[test]
    fn nav_respect_can_be_disabled() {
        let cfg = MacConfig {
            respect_nav_on_rts: false,
            ..MacConfig::default()
        };
        let mut m = DcfMac::new(NodeId(0), Scheme::OrtsOcts, params(), cfg);
        let mut ctx = MockCtx::new();
        let foreign = Frame::rts(NodeId(7), NodeId(8), 1460, &params());
        m.on_frame_received(foreign, &mut ctx);
        let rts = Frame::rts(NodeId(5), NodeId(0), 1460, &params());
        m.on_frame_received(rts, &mut ctx);
        assert_eq!(ctx.timers.len(), 1, "CTS SIFS timer scheduled despite NAV");
    }

    #[test]
    fn cts_timeout_retries_with_doubled_window() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        ctx.fire_next_timer(&mut m); // backoff -> RTS
        ctx.now += p.frame_airtime_bytes(p.rts_bytes);
        m.on_tx_done(&mut ctx);
        // Let the CTS timeout fire.
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::CtsTimeout);
        assert_eq!(m.counters().cts_timeouts, 1);
        // A new backoff must be scheduled and a second RTS eventually sent.
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        assert_eq!(m.counters().rts_tx, 2);
    }

    #[test]
    fn packet_dropped_after_short_retry_limit() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        let limit = MacConfig::default().short_retry_limit;
        for attempt in 0..=limit {
            assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
            ctx.now += p.frame_airtime_bytes(p.rts_bytes);
            m.on_tx_done(&mut ctx);
            assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::CtsTimeout);
            assert_eq!(m.counters().rts_tx, u64::from(attempt) + 1);
        }
        assert_eq!(ctx.done.len(), 1);
        assert!(!ctx.done[0].1, "packet must be reported dropped");
        assert_eq!(m.counters().packets_dropped, 1);
    }

    /// Drives one full RTS/CTS/DATA leg whose ACK never arrives: backoff →
    /// RTS → CTS in → SIFS → DATA → ACK timeout. Models a receiver whose
    /// ACKs are lost on the return path (e.g. under injected frame errors).
    fn drive_ack_loss_cycle(m: &mut DcfMac, ctx: &mut MockCtx) {
        let p = params();
        assert_eq!(ctx.fire_next_timer(m), TimerKind::Backoff);
        let (_, rts, _) = *ctx.last_tx();
        assert_eq!(rts.kind, FrameKind::Rts);
        ctx.now += p.frame_airtime(&rts);
        m.on_tx_done(ctx);
        m.on_frame_received(Frame::cts(&rts, &p), ctx);
        assert_eq!(ctx.fire_next_timer(m), TimerKind::Sifs);
        ctx.now += p.frame_airtime_bytes(1460);
        m.on_tx_done(ctx);
        assert_eq!(ctx.fire_next_timer(m), TimerKind::AckTimeout);
    }

    #[test]
    fn packet_dropped_after_long_retry_limit() {
        // Every RTS gets its CTS but no DATA is ever acknowledged: the
        // long retry counter must exhaust at its own (lower) limit.
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        m.enqueue(pkt(1), &mut ctx);
        let limit = MacConfig::default().long_retry_limit;
        for attempt in 0..=limit {
            drive_ack_loss_cycle(&mut m, &mut ctx);
            assert_eq!(m.counters().ack_timeouts, u64::from(attempt) + 1);
        }
        let c = m.counters();
        assert_eq!(c.packets_dropped, 1);
        assert_eq!(c.packets_acked, 0);
        assert_eq!(c.rts_tx, u64::from(limit) + 1, "one RTS per data attempt");
        assert_eq!(c.data_tx, u64::from(limit) + 1);
        assert_eq!(
            c.cts_timeouts, 0,
            "CTS always arrived; only the ACK leg failed"
        );
        assert_eq!(ctx.done.len(), 1);
        assert!(!ctx.done[0].1, "packet must be reported dropped");
    }

    #[test]
    fn backoff_window_resets_after_drop() {
        // Per IEEE 802.11, dropping a packet at the retry limit resets the
        // contention window to CW_min: the next packet must not inherit the
        // doubled window. The recorded draw windows pin the progression.
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        let limit = MacConfig::default().short_retry_limit;
        for _ in 0..=limit {
            assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
            ctx.now += p.frame_airtime_bytes(p.rts_bytes);
            m.on_tx_done(&mut ctx);
            assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::CtsTimeout);
        }
        assert_eq!(m.counters().packets_dropped, 1);
        // CW doubled (capped at cw_max) after each of the failures.
        let cw_min = p.cw_min;
        let cw_max = p.cw_max;
        let mut want = Vec::new();
        let mut cw = cw_min;
        for _ in 0..=limit {
            want.push(cw);
            cw = ((cw + 1) * 2 - 1).min(cw_max);
        }
        assert_eq!(ctx.cw_draws, want, "exponential window progression");
        // A fresh packet after the drop starts back at CW_min.
        m.enqueue(pkt(2), &mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        assert_eq!(
            *ctx.cw_draws.last().unwrap(),
            cw_min,
            "post-drop draw must use the reset window"
        );
    }

    #[test]
    fn mixed_cts_and_ack_loss_counters() {
        // One lost CTS, then one lost ACK, then a clean handshake: every
        // counter must book exactly its own failure mode.
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        // Attempt 1: RTS out, CTS lost.
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        ctx.now += p.frame_airtime_bytes(p.rts_bytes);
        m.on_tx_done(&mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::CtsTimeout);
        // Attempt 2: handshake reaches DATA, ACK lost.
        drive_ack_loss_cycle(&mut m, &mut ctx);
        // Attempt 3: clean.
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        let (_, rts, _) = *ctx.last_tx();
        ctx.now += p.frame_airtime(&rts);
        m.on_tx_done(&mut ctx);
        m.on_frame_received(Frame::cts(&rts, &p), &mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Sifs);
        let (_, data, _) = *ctx.last_tx();
        ctx.now += p.frame_airtime(&data);
        m.on_tx_done(&mut ctx);
        m.on_frame_received(Frame::ack(&data, &p), &mut ctx);
        let c = m.counters();
        assert_eq!(c.cts_timeouts, 1);
        assert_eq!(c.ack_timeouts, 1);
        assert_eq!(c.packets_acked, 1);
        assert_eq!(c.packets_dropped, 0);
        assert_eq!(c.rts_tx, 3);
        assert_eq!(c.data_tx, 2);
        assert!(ctx.done[0].1, "the packet eventually succeeded");
    }

    #[test]
    fn ack_timeout_counts_and_retries_whole_handshake() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        ctx.fire_next_timer(&mut m); // backoff -> RTS
        let (_, rts, _) = *ctx.last_tx();
        ctx.now += p.frame_airtime(&rts);
        m.on_tx_done(&mut ctx);
        m.on_frame_received(Frame::cts(&rts, &p), &mut ctx);
        ctx.fire_next_timer(&mut m); // SIFS -> DATA
        ctx.now += p.frame_airtime_bytes(1460);
        m.on_tx_done(&mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::AckTimeout);
        assert_eq!(m.counters().ack_timeouts, 1);
        // The retry re-contends with a fresh RTS.
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        assert_eq!(m.counters().rts_tx, 2);
        assert_eq!(m.counters().collision_ratio(), Some(1.0));
    }

    #[test]
    fn medium_busy_freezes_and_resumes_backoff() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        ctx.draw = 10;
        m.enqueue(pkt(1), &mut ctx);
        // Timer armed at DIFS + 10 slots. Let 3 slots elapse, then busy.
        ctx.now = SimTime::ZERO + p.difs + p.slot * 3 + SimDuration::from_micros(1);
        ctx.busy = true;
        m.on_medium_busy(&mut ctx);
        // Idle again: the residual must be 7 slots.
        ctx.now += SimDuration::from_millis(1);
        ctx.busy = false;
        m.on_medium_idle(&mut ctx);
        let (_, _, at) = *ctx.timers.last().unwrap();
        assert_eq!(at, ctx.now + p.difs + p.slot * 7);
    }

    #[test]
    fn busy_during_ifs_consumes_no_slots() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        ctx.draw = 4;
        m.enqueue(pkt(1), &mut ctx);
        // Busy 10 µs into the DIFS.
        ctx.now = SimTime::ZERO + SimDuration::from_micros(10);
        ctx.busy = true;
        m.on_medium_busy(&mut ctx);
        ctx.now += SimDuration::from_micros(100);
        ctx.busy = false;
        m.on_medium_idle(&mut ctx);
        let (_, _, at) = *ctx.timers.last().unwrap();
        assert_eq!(
            at,
            ctx.now + p.difs + p.slot * 4,
            "all 4 slots still pending"
        );
    }

    #[test]
    fn overheard_frame_sets_nav_and_defers() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        // Overhear an RTS for someone else.
        let foreign = Frame::rts(NodeId(3), NodeId(4), 1460, &p);
        m.on_frame_received(foreign, &mut ctx);
        // Enqueue: contention must wait for NAV expiry, not DIFS.
        m.enqueue(pkt(1), &mut ctx);
        let (kind, _, at) = *ctx.timers.last().unwrap();
        assert_eq!(kind, TimerKind::NavExpire);
        assert_eq!(at, SimTime::ZERO + foreign.duration);
    }

    #[test]
    fn nav_expiry_resumes_contention() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let foreign = Frame::rts(NodeId(3), NodeId(4), 1460, &params());
        m.on_frame_received(foreign, &mut ctx);
        m.enqueue(pkt(1), &mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::NavExpire);
        // Now a backoff timer must be pending.
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        assert_eq!(m.counters().rts_tx, 1);
    }

    #[test]
    fn eifs_used_after_corrupted_reception() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.on_rx_corrupted(&mut ctx);
        m.enqueue(pkt(1), &mut ctx);
        let (_, _, at) = ctx.timers[0];
        assert_eq!(at, SimTime::ZERO + p.eifs());
    }

    #[test]
    fn correct_reception_clears_eifs() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.on_rx_corrupted(&mut ctx);
        // Any correctly decoded frame clears the penalty (use an ACK for
        // someone else: zero NAV).
        let pkt9 = DataPacket::new(0, NodeId(8), NodeId(9), 10, SimTime::ZERO);
        let ack = Frame::ack(&Frame::data(pkt9, &p), &p);
        m.on_frame_received(ack, &mut ctx);
        m.enqueue(pkt(1), &mut ctx);
        let (_, _, at) = ctx.timers[0];
        assert_eq!(at, SimTime::ZERO + p.difs);
    }

    #[test]
    fn eifs_disabled_by_config() {
        let cfg = MacConfig {
            use_eifs: false,
            ..MacConfig::default()
        };
        let mut m = DcfMac::new(NodeId(0), Scheme::OrtsOcts, params(), cfg);
        let mut ctx = MockCtx::new();
        m.on_rx_corrupted(&mut ctx);
        m.enqueue(pkt(1), &mut ctx);
        let (_, _, at) = ctx.timers[0];
        assert_eq!(at, SimTime::ZERO + params().difs);
    }

    #[test]
    fn engaged_receiver_ignores_second_rts() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        let rts1 = Frame::rts(NodeId(5), NodeId(0), 1460, &p);
        m.on_frame_received(rts1, &mut ctx);
        let timers_before = ctx.timers.len();
        let rts2 = Frame::rts(NodeId(6), NodeId(0), 1460, &p);
        m.on_frame_received(rts2, &mut ctx);
        assert_eq!(
            ctx.timers.len(),
            timers_before,
            "second RTS must be ignored"
        );
        // The eventual CTS answers the first sender.
        ctx.fire_next_timer(&mut m);
        assert_eq!(ctx.last_tx().1.dst, NodeId(5));
    }

    #[test]
    fn receiver_data_timeout_returns_to_contention() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        let rts = Frame::rts(NodeId(5), NodeId(0), 1460, &p);
        m.on_frame_received(rts, &mut ctx);
        ctx.fire_next_timer(&mut m); // SIFS -> CTS
        ctx.now += p.frame_airtime_bytes(p.cts_bytes);
        m.on_tx_done(&mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::DataTimeout);
        assert_eq!(m.counters().data_timeouts, 1);
        // Node had no own packet: back to Idle, no timers.
        assert!(ctx.timers.is_empty());
    }

    #[test]
    fn wait_data_ignores_data_from_wrong_peer() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        let rts = Frame::rts(NodeId(5), NodeId(0), 1460, &p);
        m.on_frame_received(rts, &mut ctx);
        ctx.fire_next_timer(&mut m);
        m.on_tx_done(&mut ctx);
        let stray = Frame::data(
            DataPacket::new(0, NodeId(6), NodeId(0), 100, SimTime::ZERO),
            &p,
        );
        m.on_frame_received(stray, &mut ctx);
        assert!(ctx.delivered.is_empty(), "stray DATA must not be delivered");
    }

    #[test]
    fn stale_cts_in_contend_is_ignored() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        let rts = Frame::rts(NodeId(0), NodeId(1), 1460, &p);
        let stale_cts = Frame::cts(&rts, &p);
        m.on_frame_received(stale_cts, &mut ctx);
        // Still exactly one (backoff) timer, no transmissions.
        assert_eq!(ctx.timers.len(), 1);
        assert!(ctx.transmitted.is_empty());
    }

    #[test]
    fn queue_serves_packets_in_order() {
        let (mut m, mut ctx) = run_sender_success(Scheme::OrtsOcts);
        // Enqueue two more; the MAC should contend for the next.
        let p2 = DataPacket::new(2, NodeId(0), NodeId(2), 700, SimTime::ZERO);
        let p3 = DataPacket::new(3, NodeId(0), NodeId(3), 700, SimTime::ZERO);
        m.enqueue(p2, &mut ctx);
        m.enqueue(p3, &mut ctx);
        assert_eq!(m.queue_len(), 1, "p2 in service, p3 queued");
        assert!(m.has_backlog());
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        assert_eq!(ctx.last_tx().1.dst, NodeId(2), "p2 served first");
    }

    #[test]
    fn basic_access_skips_the_handshake() {
        let cfg = MacConfig {
            rts_threshold_bytes: u32::MAX,
            ..MacConfig::default()
        };
        let mut m = DcfMac::new(NodeId(0), Scheme::OrtsOcts, params(), cfg);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        ctx.fire_next_timer(&mut m);
        let (_, data, _) = *ctx.last_tx();
        assert_eq!(data.kind, FrameKind::Data, "basic access sends DATA first");
        assert_eq!(m.counters().rts_tx, 0);
        ctx.now += p.frame_airtime(&data);
        m.on_tx_done(&mut ctx);
        // ACK completes the two-way exchange.
        ctx.now += p.sifs + p.frame_airtime_bytes(p.ack_bytes) + p.propagation_delay * 2;
        m.on_frame_received(Frame::ack(&data, &p), &mut ctx);
        assert_eq!(m.counters().packets_acked, 1);
        assert_eq!(ctx.done.len(), 1);
        assert!(ctx.done[0].1);
    }

    #[test]
    fn rts_threshold_splits_by_frame_size() {
        let cfg = MacConfig {
            rts_threshold_bytes: 500,
            ..MacConfig::default()
        };
        let mut m = DcfMac::new(NodeId(0), Scheme::OrtsOcts, params(), cfg.clone());
        let mut ctx = MockCtx::new();
        // 1460 B > 500 B: handshake.
        m.enqueue(pkt(1), &mut ctx);
        ctx.fire_next_timer(&mut m);
        assert_eq!(ctx.last_tx().1.kind, FrameKind::Rts);
        // Fresh MAC, small packet: basic access.
        let mut m2 = DcfMac::new(NodeId(0), Scheme::OrtsOcts, params(), cfg);
        let mut ctx2 = MockCtx::new();
        m2.enqueue(
            DataPacket::new(1, NodeId(0), NodeId(1), 200, SimTime::ZERO),
            &mut ctx2,
        );
        ctx2.fire_next_timer(&mut m2);
        assert_eq!(ctx2.last_tx().1.kind, FrameKind::Data);
    }

    #[test]
    fn duplicate_data_is_acked_but_not_redelivered() {
        // A lost ACK makes the sender repeat the whole exchange; the
        // receiver must ACK the duplicate without delivering it twice.
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        let pkt = DataPacket::new(7, NodeId(5), NodeId(0), 700, SimTime::ZERO);
        let data = Frame::data(pkt, &p);
        for round in 0..2 {
            m.on_frame_received(data, &mut ctx);
            assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Sifs);
            let (_, ack, _) = *ctx.last_tx();
            assert_eq!(ack.kind, FrameKind::Ack, "round {round} must still ACK");
            ctx.now += p.frame_airtime_bytes(p.ack_bytes);
            m.on_tx_done(&mut ctx);
        }
        assert_eq!(ctx.delivered.len(), 1, "exactly one delivery");
        assert_eq!(m.counters().data_delivered, 1);
        assert_eq!(m.counters().duplicates_dropped, 1);
        assert_eq!(m.counters().ack_tx, 2);
    }

    #[test]
    fn new_sequence_from_same_sender_is_delivered() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        for seq in [1u64, 2, 3] {
            let pkt = DataPacket::new(seq, NodeId(5), NodeId(0), 100, SimTime::ZERO);
            m.on_frame_received(Frame::data(pkt, &p), &mut ctx);
            ctx.fire_next_timer(&mut m);
            ctx.now += p.frame_airtime_bytes(p.ack_bytes);
            m.on_tx_done(&mut ctx);
        }
        assert_eq!(ctx.delivered.len(), 3);
        assert_eq!(m.counters().duplicates_dropped, 0);
    }

    #[test]
    fn receiver_acks_unsolicited_data() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        let pkt = DataPacket::new(4, NodeId(6), NodeId(0), 300, SimTime::ZERO);
        let data = Frame::data(pkt, &p);
        m.on_frame_received(data, &mut ctx);
        assert_eq!(ctx.delivered.len(), 1);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Sifs);
        let (_, ack, _) = *ctx.last_tx();
        assert_eq!(ack.kind, FrameKind::Ack);
        assert_eq!(ack.dst, NodeId(6));
        assert_eq!(m.counters().data_delivered, 1);
    }

    #[test]
    fn basic_access_ack_timeout_retries() {
        let cfg = MacConfig {
            rts_threshold_bytes: u32::MAX,
            ..MacConfig::default()
        };
        let mut m = DcfMac::new(NodeId(0), Scheme::OrtsOcts, params(), cfg);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        ctx.fire_next_timer(&mut m);
        ctx.now += p.frame_airtime_bytes(1460);
        m.on_tx_done(&mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::AckTimeout);
        assert_eq!(m.counters().ack_timeouts, 1);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        assert_eq!(m.counters().data_tx, 2, "retry resends the data frame");
    }

    #[test]
    fn adaptive_rts_falls_back_to_omni_on_retry() {
        let cfg = MacConfig {
            omni_rts_on_retry: true,
            ..MacConfig::default()
        };
        let mut m = DcfMac::new(NodeId(0), Scheme::DrtsDcts, params(), cfg);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        // First attempt: directional.
        ctx.fire_next_timer(&mut m);
        assert!(ctx.last_tx().2, "first RTS must be directional");
        ctx.now += p.frame_airtime_bytes(p.rts_bytes);
        m.on_tx_done(&mut ctx);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::CtsTimeout);
        // Retry: omni.
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        let (_, rts2, dir2) = *ctx.last_tx();
        assert_eq!(rts2.kind, FrameKind::Rts);
        assert!(!dir2, "retry RTS must fall back to omni");
        // A successful handshake resets the fallback: next packet's first
        // RTS is directional again.
        ctx.now += p.frame_airtime_bytes(p.rts_bytes);
        m.on_tx_done(&mut ctx);
        let cts = Frame::cts(&rts2, &p);
        m.on_frame_received(cts, &mut ctx);
        ctx.fire_next_timer(&mut m); // SIFS -> DATA
        ctx.now += p.frame_airtime_bytes(1460);
        m.on_tx_done(&mut ctx);
        let (_, data, _) = *ctx.last_tx();
        m.on_frame_received(Frame::ack(&data, &p), &mut ctx);
        m.enqueue(
            DataPacket::new(2, NodeId(0), NodeId(1), 100, SimTime::ZERO),
            &mut ctx,
        );
        ctx.fire_next_timer(&mut m);
        assert!(ctx.last_tx().2, "fresh packet starts directional again");
    }

    #[test]
    fn counters_reset() {
        let (mut m, _) = run_sender_success(Scheme::OrtsOcts);
        assert!(m.counters().packets_acked > 0);
        m.reset_counters();
        assert_eq!(m.counters().packets_acked, 0);
        assert_eq!(m.counters().rts_tx, 0);
    }

    #[test]
    fn medium_busy_outside_contention_is_noop() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        // Idle, no packet: busy/idle edges must not schedule anything.
        ctx.busy = true;
        m.on_medium_busy(&mut ctx);
        ctx.busy = false;
        m.on_medium_idle(&mut ctx);
        assert!(ctx.timers.is_empty());
        assert!(ctx.transmitted.is_empty());
    }

    #[test]
    fn engaged_sender_ignores_incoming_rts() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx);
        ctx.fire_next_timer(&mut m); // -> TxRts
        ctx.now += p.frame_airtime_bytes(p.rts_bytes);
        m.on_tx_done(&mut ctx); // -> WaitCts
        let tx_before = ctx.transmitted.len();
        let rts = Frame::rts(NodeId(9), NodeId(0), 1460, &p);
        m.on_frame_received(rts, &mut ctx);
        // No CTS response scheduled: the only live timer is our CtsTimeout.
        assert_eq!(ctx.transmitted.len(), tx_before);
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::CtsTimeout);
    }

    #[test]
    fn cts_from_wrong_peer_does_not_advance_handshake() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        m.enqueue(pkt(1), &mut ctx); // dst = n1
        ctx.fire_next_timer(&mut m);
        ctx.now += p.frame_airtime_bytes(p.rts_bytes);
        m.on_tx_done(&mut ctx);
        // A CTS addressed to us but from node 7 (not our peer): ignore.
        let foreign_rts = Frame::rts(NodeId(0), NodeId(7), 1460, &p);
        let wrong_cts = Frame::cts(&foreign_rts, &p);
        m.on_frame_received(wrong_cts, &mut ctx);
        // The CTS timeout must still fire (handshake not advanced).
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::CtsTimeout);
        assert_eq!(m.counters().data_tx, 0);
    }

    #[test]
    fn packets_enqueued_while_answering_are_served_later() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        // Engaged as receiver.
        let rts = Frame::rts(NodeId(5), NodeId(0), 1460, &p);
        m.on_frame_received(rts, &mut ctx);
        // Our own packet arrives mid-exchange.
        m.enqueue(pkt(1), &mut ctx);
        assert!(m.has_backlog());
        // Finish the receiver exchange: CTS -> DATA -> ACK.
        ctx.fire_next_timer(&mut m); // SIFS -> CTS
        ctx.now += p.frame_airtime_bytes(p.cts_bytes);
        m.on_tx_done(&mut ctx);
        let data = Frame::data(
            DataPacket::new(0, NodeId(5), NodeId(0), 1460, SimTime::ZERO),
            &p,
        );
        m.on_frame_received(data, &mut ctx);
        ctx.fire_next_timer(&mut m); // SIFS -> ACK
        ctx.now += p.frame_airtime_bytes(p.ack_bytes);
        m.on_tx_done(&mut ctx);
        // Now our own contention resumes: a backoff timer must be armed
        // and lead to our RTS.
        assert_eq!(ctx.fire_next_timer(&mut m), TimerKind::Backoff);
        let last = ctx.last_tx();
        assert_eq!(last.1.kind, FrameKind::Rts);
        assert_eq!(last.1.src, NodeId(0));
    }

    #[test]
    fn nav_takes_maximum_of_overheard_reservations() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        let p = params();
        // Overhear a long RTS reservation, then a short ACK (zero NAV):
        // the long reservation must still govern.
        let long = Frame::rts(NodeId(3), NodeId(4), 1460, &p);
        m.on_frame_received(long, &mut ctx);
        let pkt9 = DataPacket::new(0, NodeId(8), NodeId(9), 10, SimTime::ZERO);
        let short = Frame::ack(&Frame::data(pkt9, &p), &p);
        ctx.now += SimDuration::from_micros(100);
        m.on_frame_received(short, &mut ctx);
        m.enqueue(pkt(1), &mut ctx);
        let (kind, _, at) = *ctx.timers.last().unwrap();
        assert_eq!(kind, TimerKind::NavExpire);
        assert_eq!(
            at,
            SimTime::ZERO + long.duration,
            "long reservation governs"
        );
    }

    #[test]
    fn is_timer_live_tracks_generations() {
        let mut m = mac(Scheme::OrtsOcts);
        let mut ctx = MockCtx::new();
        m.enqueue(pkt(1), &mut ctx);
        let (kind, gen, _) = ctx.timers[0];
        assert!(m.is_timer_live(kind, gen));
        // Medium busy cancels the backoff timer.
        ctx.busy = true;
        m.on_medium_busy(&mut ctx);
        assert!(!m.is_timer_live(kind, gen));
    }

    #[test]
    fn idle_mac_has_no_backlog() {
        let m = mac(Scheme::OrtsOcts);
        assert!(!m.has_backlog());
        assert_eq!(m.queue_len(), 0);
        assert_eq!(m.id(), NodeId(0));
        assert_eq!(m.scheme(), Scheme::OrtsOcts);
    }
}
