//! MAC frames and upper-layer data packets.

use std::fmt;

use dirca_radio::NodeId;
use dirca_sim::{SimDuration, SimTime};

use crate::Dot11Params;

/// The four MAC frame types of the RTS/CTS four-way handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
    /// Data frame.
    Data,
    /// Acknowledgment.
    Ack,
}

impl FrameKind {
    /// Every frame kind, in handshake order.
    pub const ALL: [FrameKind; 4] = [
        FrameKind::Rts,
        FrameKind::Cts,
        FrameKind::Data,
        FrameKind::Ack,
    ];

    /// The canonical on-wire name (`"RTS"`, `"CTS"`, `"DATA"`, `"ACK"`),
    /// used by [`fmt::Display`] and as the `frame` field of trace records.
    pub fn label(self) -> &'static str {
        match self {
            FrameKind::Rts => "RTS",
            FrameKind::Cts => "CTS",
            FrameKind::Data => "DATA",
            FrameKind::Ack => "ACK",
        }
    }

    /// The inverse of [`FrameKind::label`].
    pub fn from_label(label: &str) -> Option<FrameKind> {
        FrameKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An upper-layer packet handed to the MAC for delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPacket {
    /// Sender-local sequence number.
    pub seq: u64,
    /// Originating node.
    pub src: NodeId,
    /// Destination node (must be a neighbour; no routing in this model).
    pub dst: NodeId,
    /// Size on the air in bytes (payload + MAC overhead).
    pub bytes: u32,
    /// Creation instant, for delay accounting.
    pub created: SimTime,
}

impl DataPacket {
    /// Creates a data packet.
    pub fn new(seq: u64, src: NodeId, dst: NodeId, bytes: u32, created: SimTime) -> Self {
        DataPacket {
            seq,
            src,
            dst,
            bytes,
            created,
        }
    }
}

/// A MAC frame on the air.
///
/// `duration` carries the frame's Duration/NAV field: the time the medium
/// will remain reserved *after this frame ends*, which overhearing nodes
/// load into their NAV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    /// Frame type.
    pub kind: FrameKind,
    /// Transmitting node.
    pub src: NodeId,
    /// Addressed node.
    pub dst: NodeId,
    /// NAV duration advertised by this frame.
    pub duration: SimDuration,
    /// On-air payload size (meaningful for DATA frames; control frames use
    /// the sizes from [`Dot11Params`]).
    pub payload_bytes: u32,
    /// The data packet carried by a DATA frame.
    pub payload: Option<DataPacket>,
}

impl Frame {
    /// Builds an RTS from `src` to `dst` reserving the medium for a data
    /// frame of `data_bytes`.
    pub fn rts(src: NodeId, dst: NodeId, data_bytes: u32, params: &Dot11Params) -> Frame {
        Frame {
            kind: FrameKind::Rts,
            src,
            dst,
            duration: params.rts_nav(data_bytes),
            payload_bytes: data_bytes,
            payload: None,
        }
    }

    /// Builds the CTS answering `rts`.
    ///
    /// # Panics
    ///
    /// Panics if `rts` is not an RTS frame.
    pub fn cts(rts: &Frame, params: &Dot11Params) -> Frame {
        assert_eq!(rts.kind, FrameKind::Rts, "cts() must answer an RTS");
        Frame {
            kind: FrameKind::Cts,
            src: rts.dst,
            dst: rts.src,
            duration: params.cts_nav(rts.payload_bytes),
            payload_bytes: rts.payload_bytes,
            payload: None,
        }
    }

    /// Builds the DATA frame carrying `packet`.
    pub fn data(packet: DataPacket, params: &Dot11Params) -> Frame {
        Frame {
            kind: FrameKind::Data,
            src: packet.src,
            dst: packet.dst,
            duration: params.data_nav(),
            payload_bytes: packet.bytes,
            payload: Some(packet),
        }
    }

    /// Builds the ACK answering `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a DATA frame.
    pub fn ack(data: &Frame, _params: &Dot11Params) -> Frame {
        assert_eq!(data.kind, FrameKind::Data, "ack() must answer a DATA frame");
        Frame {
            kind: FrameKind::Ack,
            src: data.dst,
            dst: data.src,
            duration: SimDuration::ZERO,
            payload_bytes: 0,
            payload: None,
        }
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}→{}", self.kind, self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Dot11Params {
        Dot11Params::dsss_2mbps()
    }

    #[test]
    fn rts_carries_full_reservation() {
        let p = params();
        let rts = Frame::rts(NodeId(1), NodeId(2), 1460, &p);
        assert_eq!(rts.kind, FrameKind::Rts);
        assert_eq!(rts.duration, p.rts_nav(1460));
        assert_eq!((rts.src, rts.dst), (NodeId(1), NodeId(2)));
    }

    #[test]
    fn handshake_frames_swap_addresses() {
        let p = params();
        let rts = Frame::rts(NodeId(1), NodeId(2), 1460, &p);
        let cts = Frame::cts(&rts, &p);
        assert_eq!((cts.src, cts.dst), (NodeId(2), NodeId(1)));
        let pkt = DataPacket::new(0, NodeId(1), NodeId(2), 1460, SimTime::ZERO);
        let data = Frame::data(pkt, &p);
        let ack = Frame::ack(&data, &p);
        assert_eq!((ack.src, ack.dst), (NodeId(2), NodeId(1)));
    }

    #[test]
    fn nav_decreases_along_the_handshake() {
        let p = params();
        let rts = Frame::rts(NodeId(1), NodeId(2), 1460, &p);
        let cts = Frame::cts(&rts, &p);
        let pkt = DataPacket::new(0, NodeId(1), NodeId(2), 1460, SimTime::ZERO);
        let data = Frame::data(pkt, &p);
        let ack = Frame::ack(&data, &p);
        assert!(rts.duration > cts.duration);
        assert!(cts.duration > data.duration);
        assert!(data.duration > ack.duration);
        assert_eq!(ack.duration, SimDuration::ZERO);
    }

    #[test]
    fn data_frame_carries_packet() {
        let p = params();
        let pkt = DataPacket::new(9, NodeId(3), NodeId(4), 500, SimTime::from_micros(5));
        let data = Frame::data(pkt, &p);
        assert_eq!(data.payload, Some(pkt));
        assert_eq!(data.payload_bytes, 500);
    }

    #[test]
    #[should_panic(expected = "must answer an RTS")]
    fn cts_rejects_non_rts() {
        let p = params();
        let pkt = DataPacket::new(0, NodeId(0), NodeId(1), 10, SimTime::ZERO);
        let data = Frame::data(pkt, &p);
        let _ = Frame::cts(&data, &p);
    }

    #[test]
    #[should_panic(expected = "must answer a DATA frame")]
    fn ack_rejects_non_data() {
        let p = params();
        let rts = Frame::rts(NodeId(0), NodeId(1), 10, &p);
        let _ = Frame::ack(&rts, &p);
    }

    #[test]
    fn labels_round_trip() {
        for kind in FrameKind::ALL {
            assert_eq!(FrameKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FrameKind::from_label("NACK"), None);
    }

    #[test]
    fn displays_are_informative() {
        let p = params();
        let rts = Frame::rts(NodeId(1), NodeId(2), 1460, &p);
        let s = format!("{rts}");
        assert!(s.contains("RTS") && s.contains("n1") && s.contains("n2"));
        assert_eq!(format!("{}", FrameKind::Data), "DATA");
    }
}
