//! IEEE 802.11 DSSS DCF and its directional variants.
//!
//! This crate implements the MAC layer studied in Wang &
//! Garcia-Luna-Aceves (ICDCS 2003):
//!
//! * the standard **ORTS-OCTS** four-way handshake (RTS/CTS/DATA/ACK, all
//!   omni-directional) — i.e. IEEE 802.11 DCF with the DSSS PHY parameters
//!   of the paper's Table 1,
//! * **DRTS-DCTS** — every frame beamformed toward its peer,
//! * **DRTS-OCTS** — RTS/DATA/ACK beamformed, CTS omni-directional.
//!
//! The protocol engine [`DcfMac`] is a *pure state machine*: it never talks
//! to an event queue directly. Its host (the `dirca-net` crate, or the mock
//! harness in this crate's tests) feeds it medium-state edges, decoded
//! frames, transmit-complete notifications and timer firings, and it reacts
//! through the [`MacContext`] trait. This keeps every protocol rule unit-
//! testable without a radio or an event loop.
//!
//! Features implemented: physical + virtual carrier sense (NAV), binary
//! exponential backoff with freeze/resume at slot granularity, SIFS/DIFS/
//! EIFS interframe spacing, CTS/DATA/ACK timeouts, separate short/long
//! retry limits, per-frame transmit beam selection by [`Scheme`], and the
//! counter set needed for the paper's throughput/delay/collision-ratio
//! metrics.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod backoff;
mod counters;
mod dcf;
mod frame;
mod nav;
mod params;
mod scheme;

pub use backoff::Backoff;
pub use counters::MacCounters;
pub use dcf::{DcfMac, MacConfig, MacContext, TimerKind};
pub use frame::{DataPacket, Frame, FrameKind};
pub use nav::Nav;
pub use params::Dot11Params;
pub use scheme::Scheme;
