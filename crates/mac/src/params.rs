//! Protocol configuration parameters (Table 1 of the paper).

use dirca_sim::SimDuration;

use crate::{Frame, FrameKind};

/// IEEE 802.11 MAC/PHY timing and size parameters.
///
/// [`Dot11Params::dsss_2mbps`] reproduces Table 1 of the paper exactly: the
/// DSSS PHY at 2 Mbps with 20-byte RTS, 14-byte CTS/ACK, 1460-byte data
/// frames, DIFS 50 µs, SIFS 10 µs, slot 20 µs, synchronization (PLCP
/// preamble + header) 192 µs, propagation delay 1 µs, and contention window
/// 31–1023.
///
/// # Example
///
/// ```
/// use dirca_mac::Dot11Params;
///
/// let p = Dot11Params::dsss_2mbps();
/// // An RTS takes sync (192 µs) + 20 B × 8 / 2 Mbps = 192 + 80 = 272 µs.
/// assert_eq!(p.frame_airtime_bytes(p.rts_bytes).as_nanos(), 272_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dot11Params {
    /// Channel bit rate in bits per second.
    pub bit_rate_bps: u64,
    /// RTS frame size in bytes.
    pub rts_bytes: u32,
    /// CTS frame size in bytes.
    pub cts_bytes: u32,
    /// ACK frame size in bytes.
    pub ack_bytes: u32,
    /// Default data frame size in bytes (payload + MAC header).
    pub data_bytes: u32,
    /// DIFS — DCF interframe space.
    pub difs: SimDuration,
    /// SIFS — short interframe space.
    pub sifs: SimDuration,
    /// Backoff slot time.
    pub slot: SimDuration,
    /// PHY synchronization time (PLCP preamble + header) prepended to every
    /// frame.
    pub sync: SimDuration,
    /// One-way propagation delay.
    pub propagation_delay: SimDuration,
    /// Minimum contention window (CW starts here).
    pub cw_min: u32,
    /// Maximum contention window (CW is capped here).
    pub cw_max: u32,
}

impl Dot11Params {
    /// The DSSS parameter set of the paper's Table 1 (2 Mbps).
    pub fn dsss_2mbps() -> Self {
        Dot11Params {
            bit_rate_bps: 2_000_000,
            rts_bytes: 20,
            cts_bytes: 14,
            ack_bytes: 14,
            data_bytes: 1460,
            difs: SimDuration::from_micros(50),
            sifs: SimDuration::from_micros(10),
            slot: SimDuration::from_micros(20),
            sync: SimDuration::from_micros(192),
            propagation_delay: SimDuration::from_micros(1),
            cw_min: 31,
            cw_max: 1023,
        }
    }

    /// Airtime of a frame of `bytes` bytes: sync time plus serialization at
    /// the channel bit rate.
    pub fn frame_airtime_bytes(&self, bytes: u32) -> SimDuration {
        let bits = u64::from(bytes) * 8;
        // Round up to whole nanoseconds.
        let ns = (bits * 1_000_000_000).div_ceil(self.bit_rate_bps);
        self.sync + SimDuration::from_nanos(ns)
    }

    /// Airtime of `frame`, using its kind and payload size.
    pub fn frame_airtime(&self, frame: &Frame) -> SimDuration {
        self.frame_airtime_bytes(self.frame_bytes(frame))
    }

    /// On-air size in bytes of `frame`.
    pub fn frame_bytes(&self, frame: &Frame) -> u32 {
        match frame.kind {
            FrameKind::Rts => self.rts_bytes,
            FrameKind::Cts => self.cts_bytes,
            FrameKind::Ack => self.ack_bytes,
            FrameKind::Data => frame.payload_bytes.max(1),
        }
    }

    /// EIFS — extended interframe space used after a corrupted reception:
    /// `SIFS + ACK airtime + DIFS` (IEEE 802.11-1999 §9.2.10).
    pub fn eifs(&self) -> SimDuration {
        self.sifs + self.frame_airtime_bytes(self.ack_bytes) + self.difs
    }

    /// How long a sender waits for a CTS after its RTS leaves the air
    /// before declaring the handshake failed.
    pub fn cts_timeout(&self) -> SimDuration {
        self.sifs
            + self.frame_airtime_bytes(self.cts_bytes)
            + self.propagation_delay * 2
            + self.slot
    }

    /// How long a receiver waits for the DATA frame after its CTS leaves
    /// the air.
    pub fn data_timeout_for(&self, data_bytes: u32) -> SimDuration {
        self.sifs + self.frame_airtime_bytes(data_bytes) + self.propagation_delay * 2 + self.slot
    }

    /// How long a sender waits for the ACK after its DATA frame leaves the
    /// air.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs
            + self.frame_airtime_bytes(self.ack_bytes)
            + self.propagation_delay * 2
            + self.slot
    }

    /// NAV duration advertised in an RTS: the remainder of the four-way
    /// handshake after the RTS leaves the air.
    pub fn rts_nav(&self, data_bytes: u32) -> SimDuration {
        self.sifs * 3
            + self.frame_airtime_bytes(self.cts_bytes)
            + self.frame_airtime_bytes(data_bytes)
            + self.frame_airtime_bytes(self.ack_bytes)
            + self.propagation_delay * 4
    }

    /// NAV duration advertised in a CTS: the remainder after the CTS.
    pub fn cts_nav(&self, data_bytes: u32) -> SimDuration {
        self.sifs * 2
            + self.frame_airtime_bytes(data_bytes)
            + self.frame_airtime_bytes(self.ack_bytes)
            + self.propagation_delay * 3
    }

    /// NAV duration advertised in a DATA frame: the trailing SIFS + ACK.
    pub fn data_nav(&self) -> SimDuration {
        self.sifs + self.frame_airtime_bytes(self.ack_bytes) + self.propagation_delay * 2
    }
}

impl Default for Dot11Params {
    fn default() -> Self {
        Self::dsss_2mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataPacket;
    use dirca_radio::NodeId;
    use dirca_sim::SimTime;

    #[test]
    fn table1_values() {
        let p = Dot11Params::dsss_2mbps();
        assert_eq!(p.bit_rate_bps, 2_000_000);
        assert_eq!(p.rts_bytes, 20);
        assert_eq!(p.cts_bytes, 14);
        assert_eq!(p.ack_bytes, 14);
        assert_eq!(p.data_bytes, 1460);
        assert_eq!(p.difs, SimDuration::from_micros(50));
        assert_eq!(p.sifs, SimDuration::from_micros(10));
        assert_eq!(p.slot, SimDuration::from_micros(20));
        assert_eq!(p.sync, SimDuration::from_micros(192));
        assert_eq!(p.propagation_delay, SimDuration::from_micros(1));
        assert_eq!((p.cw_min, p.cw_max), (31, 1023));
    }

    #[test]
    fn airtimes_match_hand_computation() {
        let p = Dot11Params::dsss_2mbps();
        // CTS/ACK: 192 + 14*8/2 = 192 + 56 = 248 µs.
        assert_eq!(p.frame_airtime_bytes(14), SimDuration::from_micros(248));
        // DATA: 192 + 1460*8/2 = 192 + 5840 = 6032 µs.
        assert_eq!(p.frame_airtime_bytes(1460), SimDuration::from_micros(6032));
    }

    #[test]
    fn airtime_rounds_up_partial_nanoseconds() {
        let mut p = Dot11Params::dsss_2mbps();
        p.bit_rate_bps = 3; // pathological rate: 8 bits take 2666666666.67 ns
        let t = p.frame_airtime_bytes(1) - p.sync;
        assert_eq!(t.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn frame_airtime_dispatches_on_kind() {
        let p = Dot11Params::dsss_2mbps();
        let rts = Frame::rts(NodeId(0), NodeId(1), 1460, &p);
        assert_eq!(p.frame_airtime(&rts), p.frame_airtime_bytes(20));
        let pkt = DataPacket::new(7, NodeId(0), NodeId(1), 1460, SimTime::ZERO);
        let data = Frame::data(pkt, &p);
        assert_eq!(p.frame_airtime(&data), p.frame_airtime_bytes(1460));
    }

    #[test]
    fn eifs_exceeds_difs() {
        let p = Dot11Params::dsss_2mbps();
        assert!(p.eifs() > p.difs);
        assert_eq!(p.eifs(), p.sifs + p.frame_airtime_bytes(14) + p.difs);
    }

    #[test]
    fn timeouts_cover_the_awaited_frame() {
        let p = Dot11Params::dsss_2mbps();
        // The CTS timeout must cover SIFS + CTS airtime + both propagation legs.
        assert!(p.cts_timeout() > p.sifs + p.frame_airtime_bytes(p.cts_bytes));
        assert!(p.ack_timeout() > p.sifs + p.frame_airtime_bytes(p.ack_bytes));
        assert!(p.data_timeout_for(1460) > p.sifs + p.frame_airtime_bytes(1460));
    }

    #[test]
    fn nav_chain_is_consistent() {
        // rts_nav == cts airtime + sifs + prop + cts_nav
        let p = Dot11Params::dsss_2mbps();
        let via_cts =
            p.frame_airtime_bytes(p.cts_bytes) + p.sifs + p.propagation_delay + p.cts_nav(1460);
        assert_eq!(p.rts_nav(1460), via_cts);
        // cts_nav == data airtime + sifs + prop + data_nav
        let via_data = p.frame_airtime_bytes(1460) + p.sifs + p.propagation_delay + p.data_nav();
        assert_eq!(p.cts_nav(1460), via_data);
    }

    #[test]
    fn default_is_dsss() {
        assert_eq!(Dot11Params::default(), Dot11Params::dsss_2mbps());
    }
}
