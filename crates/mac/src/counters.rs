//! Per-node MAC statistics.

use dirca_sim::SimDuration;

/// Event counters and delay accumulators for one node's MAC.
///
/// These feed the paper's three metrics:
///
/// * **throughput** — `data_delivered_bytes` over the measurement window,
/// * **delay** — `service_delay_total / packets_acked` (head-of-queue to
///   ACK),
/// * **collision ratio** — `ack_timeouts / (ack_timeouts + packets_acked)`,
///   the fraction of RTS-CTS-DATA handshakes whose data frame collided
///   (§4 of the paper).
#[derive(Debug, Clone, Default)]
pub struct MacCounters {
    /// RTS frames transmitted.
    pub rts_tx: u64,
    /// CTS frames transmitted.
    pub cts_tx: u64,
    /// DATA frames transmitted.
    pub data_tx: u64,
    /// ACK frames transmitted.
    pub ack_tx: u64,
    /// CTS timeouts (RTS got no answer).
    pub cts_timeouts: u64,
    /// ACK timeouts (DATA frame presumed collided).
    pub ack_timeouts: u64,
    /// DATA timeouts on the receiver side (CTS sent, data never arrived).
    pub data_timeouts: u64,
    /// Packets acknowledged end-to-end (sender side).
    pub packets_acked: u64,
    /// Packets dropped after exhausting retries.
    pub packets_dropped: u64,
    /// Bytes of DATA payload acknowledged (sender side).
    pub data_acked_bytes: u64,
    /// Duplicate DATA frames suppressed by receive dedup (the frame was
    /// ACKed again but not re-delivered).
    pub duplicates_dropped: u64,
    /// DATA frames delivered to the upper layer (receiver side).
    pub data_delivered: u64,
    /// Bytes of DATA payload delivered (receiver side).
    pub data_delivered_bytes: u64,
    /// Total head-of-queue-to-ACK service time over all acked packets.
    pub service_delay_total: SimDuration,
    /// Total creation-to-ACK (queueing + service) time over all acked
    /// packets — the end-to-end delay under unsaturated traffic.
    pub e2e_delay_total: SimDuration,
}

impl MacCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collision ratio of §4: among handshakes that progressed to a
    /// data transmission, the fraction whose data frame was never
    /// acknowledged. `None` if no handshake progressed that far.
    pub fn collision_ratio(&self) -> Option<f64> {
        let denom = self.ack_timeouts + self.packets_acked;
        if denom == 0 {
            None
        } else {
            Some(self.ack_timeouts as f64 / denom as f64)
        }
    }

    /// Mean MAC service delay (head-of-queue to ACK) per acked packet.
    /// `None` if nothing was acked.
    pub fn mean_service_delay(&self) -> Option<SimDuration> {
        if self.packets_acked == 0 {
            None
        } else {
            Some(self.service_delay_total / self.packets_acked)
        }
    }

    /// Mean end-to-end delay (packet creation to ACK) per acked packet.
    /// `None` if nothing was acked.
    pub fn mean_e2e_delay(&self) -> Option<SimDuration> {
        if self.packets_acked == 0 {
            None
        } else {
            Some(self.e2e_delay_total / self.packets_acked)
        }
    }

    /// Fraction of transmitted RTS frames that received a CTS. `None` if no
    /// RTS was sent.
    pub fn rts_success_ratio(&self) -> Option<f64> {
        if self.rts_tx == 0 {
            None
        } else {
            Some(self.data_tx as f64 / self.rts_tx as f64)
        }
    }

    /// Accumulates `other` into `self` (for network-wide aggregates).
    pub fn merge(&mut self, other: &MacCounters) {
        self.rts_tx += other.rts_tx;
        self.cts_tx += other.cts_tx;
        self.data_tx += other.data_tx;
        self.ack_tx += other.ack_tx;
        self.cts_timeouts += other.cts_timeouts;
        self.ack_timeouts += other.ack_timeouts;
        self.data_timeouts += other.data_timeouts;
        self.packets_acked += other.packets_acked;
        self.packets_dropped += other.packets_dropped;
        self.data_acked_bytes += other.data_acked_bytes;
        self.duplicates_dropped += other.duplicates_dropped;
        self.data_delivered += other.data_delivered;
        self.data_delivered_bytes += other.data_delivered_bytes;
        self.service_delay_total += other.service_delay_total;
        self.e2e_delay_total += other.e2e_delay_total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_counters_have_no_ratios() {
        let c = MacCounters::new();
        assert_eq!(c.collision_ratio(), None);
        assert_eq!(c.mean_service_delay(), None);
        assert_eq!(c.rts_success_ratio(), None);
    }

    #[test]
    fn collision_ratio_counts_data_losses() {
        let c = MacCounters {
            ack_timeouts: 1,
            packets_acked: 3,
            ..MacCounters::new()
        };
        assert_eq!(c.collision_ratio(), Some(0.25));
    }

    #[test]
    fn mean_delay_divides_by_acked() {
        let c = MacCounters {
            packets_acked: 4,
            service_delay_total: SimDuration::from_micros(100),
            ..MacCounters::new()
        };
        assert_eq!(c.mean_service_delay(), Some(SimDuration::from_micros(25)));
    }

    #[test]
    fn e2e_delay_divides_by_acked() {
        let c = MacCounters {
            packets_acked: 2,
            e2e_delay_total: SimDuration::from_micros(100),
            ..MacCounters::new()
        };
        assert_eq!(c.mean_e2e_delay(), Some(SimDuration::from_micros(50)));
        assert_eq!(MacCounters::new().mean_e2e_delay(), None);
    }

    #[test]
    fn rts_success_ratio() {
        let c = MacCounters {
            rts_tx: 10,
            data_tx: 7,
            ..MacCounters::new()
        };
        assert_eq!(c.rts_success_ratio(), Some(0.7));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = MacCounters {
            rts_tx: 1,
            packets_acked: 2,
            service_delay_total: SimDuration::from_micros(10),
            ..MacCounters::new()
        };
        let b = MacCounters {
            rts_tx: 3,
            packets_acked: 5,
            service_delay_total: SimDuration::from_micros(20),
            ..MacCounters::new()
        };
        a.merge(&b);
        assert_eq!(a.rts_tx, 4);
        assert_eq!(a.packets_acked, 7);
        assert_eq!(a.service_delay_total, SimDuration::from_micros(30));
    }
}
