//! The network allocation vector (virtual carrier sense).

use dirca_sim::{SimDuration, SimTime};

/// Virtual carrier sense: the latest instant up to which overheard frames
/// have reserved the medium.
///
/// # Example
///
/// ```
/// use dirca_mac::Nav;
/// use dirca_sim::{SimDuration, SimTime};
///
/// let mut nav = Nav::new();
/// let t0 = SimTime::from_micros(100);
/// nav.reserve(t0, SimDuration::from_micros(50));
/// assert!(nav.is_busy(SimTime::from_micros(120)));
/// assert!(!nav.is_busy(SimTime::from_micros(150)));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Nav {
    until: SimTime,
}

impl Nav {
    /// Creates a cleared NAV.
    pub fn new() -> Self {
        Nav::default()
    }

    /// Extends the reservation to `now + duration` if that is later than
    /// the current reservation. Returns `true` if the NAV end moved.
    pub fn reserve(&mut self, now: SimTime, duration: SimDuration) -> bool {
        let end = now + duration;
        if end > self.until {
            self.until = end;
            true
        } else {
            false
        }
    }

    /// Whether the medium is virtually reserved at `now`.
    ///
    /// The reservation interval is half-open: at exactly `until` the medium
    /// is free again.
    pub fn is_busy(&self, now: SimTime) -> bool {
        now < self.until
    }

    /// The instant the reservation expires.
    pub fn until(&self) -> SimTime {
        self.until
    }

    /// Clears the reservation.
    pub fn clear(&mut self) {
        self.until = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_nav_is_idle() {
        let nav = Nav::new();
        assert!(!nav.is_busy(SimTime::ZERO));
        assert!(!nav.is_busy(SimTime::from_secs(1)));
    }

    #[test]
    fn reserve_extends_only_forward() {
        let mut nav = Nav::new();
        assert!(nav.reserve(SimTime::from_micros(0), SimDuration::from_micros(100)));
        // A shorter overlapping reservation does not shrink the NAV.
        assert!(!nav.reserve(SimTime::from_micros(10), SimDuration::from_micros(20)));
        assert_eq!(nav.until(), SimTime::from_micros(100));
        // A longer one extends it.
        assert!(nav.reserve(SimTime::from_micros(50), SimDuration::from_micros(100)));
        assert_eq!(nav.until(), SimTime::from_micros(150));
    }

    #[test]
    fn boundary_is_half_open() {
        let mut nav = Nav::new();
        nav.reserve(SimTime::ZERO, SimDuration::from_micros(10));
        assert!(nav.is_busy(SimTime::from_nanos(9_999)));
        assert!(!nav.is_busy(SimTime::from_micros(10)));
    }

    #[test]
    fn clear_resets() {
        let mut nav = Nav::new();
        nav.reserve(SimTime::ZERO, SimDuration::from_secs(1));
        nav.clear();
        assert!(!nav.is_busy(SimTime::from_micros(1)));
    }

    #[test]
    fn zero_duration_reservation_is_noop_for_busy() {
        let mut nav = Nav::new();
        nav.reserve(SimTime::from_micros(5), SimDuration::ZERO);
        assert!(!nav.is_busy(SimTime::from_micros(5)));
    }
}
