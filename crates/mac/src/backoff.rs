//! Binary exponential backoff with freeze/resume at slot granularity.

/// The DCF binary exponential backoff engine.
///
/// Tracks the contention window (doubling from `cw_min + 1` up to
/// `cw_max + 1` minus one on each failure, per IEEE 802.11) and the frozen
/// residual slot count between medium-busy periods.
///
/// The caller supplies randomness through a closure so the engine stays
/// deterministic and testable.
///
/// # Example
///
/// ```
/// use dirca_mac::Backoff;
///
/// let mut b = Backoff::new(31, 1023);
/// assert_eq!(b.cw(), 31);
/// b.on_failure();
/// assert_eq!(b.cw(), 63);
/// b.on_success();
/// assert_eq!(b.cw(), 31);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    cw_min: u32,
    cw_max: u32,
    cw: u32,
    /// Slots still to count down; `None` until drawn.
    remaining: Option<u32>,
}

impl Backoff {
    /// Creates a backoff engine with the given window bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cw_min <= cw_max`.
    pub fn new(cw_min: u32, cw_max: u32) -> Self {
        assert!(
            cw_min > 0 && cw_min <= cw_max,
            "require 0 < cw_min <= cw_max, got [{cw_min}, {cw_max}]"
        );
        Backoff {
            cw_min,
            cw_max,
            cw: cw_min,
            remaining: None,
        }
    }

    /// The current contention window (backoff slots are drawn uniformly
    /// from `[0, cw]`).
    pub fn cw(&self) -> u32 {
        self.cw
    }

    /// Residual slots to count down, if a draw is outstanding.
    pub fn remaining(&self) -> Option<u32> {
        self.remaining
    }

    /// Ensures a slot count is drawn, using `draw(cw)` to sample uniformly
    /// from `[0, cw]`, and returns the residual count.
    pub fn ensure_drawn(&mut self, draw: impl FnOnce(u32) -> u32) -> u32 {
        match self.remaining {
            Some(r) => r,
            None => {
                let r = draw(self.cw);
                debug_assert!(r <= self.cw, "draw returned {r} > cw {}", self.cw);
                self.remaining = Some(r);
                r
            }
        }
    }

    /// Consumes `slots` counted down while the medium was idle.
    pub fn consume(&mut self, slots: u32) {
        if let Some(r) = &mut self.remaining {
            *r = r.saturating_sub(slots);
        }
    }

    /// The countdown completed: clears the residual (the window is left
    /// untouched — success/failure adjust it separately).
    pub fn complete(&mut self) {
        self.remaining = None;
    }

    /// A transmission failed: double the window (capped) and force a fresh
    /// draw.
    pub fn on_failure(&mut self) {
        self.cw = ((self.cw + 1) * 2 - 1).min(self.cw_max);
        self.remaining = None;
    }

    /// A transmission succeeded (or the packet was dropped): reset the
    /// window and force a fresh draw.
    pub fn on_success(&mut self) {
        self.cw = self.cw_min;
        self.remaining = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_doubles_and_caps() {
        let mut b = Backoff::new(31, 1023);
        let expected = [63, 127, 255, 511, 1023, 1023];
        for &e in &expected {
            b.on_failure();
            assert_eq!(b.cw(), e);
        }
    }

    #[test]
    fn success_resets_window() {
        let mut b = Backoff::new(31, 1023);
        b.on_failure();
        b.on_failure();
        b.on_success();
        assert_eq!(b.cw(), 31);
    }

    #[test]
    fn draw_happens_once_until_completed() {
        let mut b = Backoff::new(31, 1023);
        let mut draws = 0;
        let r1 = b.ensure_drawn(|cw| {
            draws += 1;
            cw / 2
        });
        let r2 = b.ensure_drawn(|_| {
            draws += 1;
            0
        });
        assert_eq!(r1, r2);
        assert_eq!(draws, 1);
        b.complete();
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn consume_decrements_and_saturates() {
        let mut b = Backoff::new(31, 1023);
        b.ensure_drawn(|_| 10);
        b.consume(4);
        assert_eq!(b.remaining(), Some(6));
        b.consume(100);
        assert_eq!(b.remaining(), Some(0));
    }

    #[test]
    fn failure_forces_redraw() {
        let mut b = Backoff::new(31, 1023);
        b.ensure_drawn(|_| 5);
        b.on_failure();
        assert_eq!(b.remaining(), None);
        let r = b.ensure_drawn(|cw| cw);
        assert_eq!(r, 63);
    }

    #[test]
    fn consume_without_draw_is_noop() {
        let mut b = Backoff::new(31, 1023);
        b.consume(5);
        assert_eq!(b.remaining(), None);
    }

    #[test]
    #[should_panic(expected = "cw_min <= cw_max")]
    fn rejects_inverted_bounds() {
        let _ = Backoff::new(100, 50);
    }
}
