//! The paper's headline experiment in miniature: sweep the antenna
//! beamwidth and watch spatial reuse trade off against collision
//! avoidance.
//!
//! For each beamwidth, a handful of random ring topologies (N = 5) are
//! simulated under all three schemes; the table shows mean normalized
//! throughput of the inner nodes. Expect DRTS-DCTS to shine at narrow
//! beams and fade as the beam widens, while ORTS-OCTS ignores θ entirely.
//!
//! Run with: `cargo run --release --example beamwidth_sweep`

use dirca::experiments::ringsim::{run_cell, RingExperiment};
use dirca::mac::Scheme;
use dirca::sim::SimDuration;

fn main() {
    let thetas = [30.0, 60.0, 90.0, 120.0, 150.0];
    println!(
        "{:>7} | {:>10} | {:>10} | {:>10}",
        "θ (deg)", "ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS"
    );
    for theta in thetas {
        let mut cells = Vec::new();
        for scheme in Scheme::ALL {
            let exp = RingExperiment {
                topologies: 6,
                warmup: SimDuration::from_millis(200),
                measure: SimDuration::from_secs(3),
                ..RingExperiment::paper(scheme, 5, theta)
            };
            let outcome = run_cell(&exp, 4);
            cells.push(outcome.throughput.mean().unwrap_or(0.0));
        }
        println!(
            "{:>7.0} | {:>10.3} | {:>10.3} | {:>10.3}",
            theta, cells[0], cells[1], cells[2]
        );
    }
    println!("\n(normalized aggregate throughput of the inner 5 nodes; 6 topologies per cell)");
}
