//! Probing the fairness problem of §4: binary exponential backoff lets the
//! last winner keep winning, and wide beams make it worse.
//!
//! The example simulates one ring topology (N = 3, few competitors — the
//! regime the paper calls out as especially unfair) under DRTS-DCTS with a
//! narrow and a wide beam, and prints each inner node's throughput plus
//! Jain's fairness index.
//!
//! Run with: `cargo run --release --example fairness_probe`

use dirca::mac::Scheme;
use dirca::net::{run, SimConfig};
use dirca::sim::SimDuration;
use dirca::stats::jain_index;
use dirca::topology::RingSpec;
use rand::SeedableRng;

fn main() {
    let spec = RingSpec::paper(3, 1.0);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
    let topology = spec.generate(&mut rng).expect("topology generation");

    for theta in [30.0, 150.0] {
        let config = SimConfig::new(Scheme::DrtsDcts)
            .with_beamwidth_degrees(theta)
            .with_seed(3)
            .with_warmup(SimDuration::from_millis(200))
            .with_measure(SimDuration::from_secs(5));
        let result = run(&topology, &config);
        let per_node = result.node_throughputs_bps();
        println!("DRTS-DCTS, θ = {theta}°:");
        for (i, th) in per_node.iter().enumerate() {
            println!("  node {i}: {th:>9.0} b/s");
        }
        println!(
            "  Jain fairness index: {:.3}\n",
            jain_index(&per_node).unwrap_or(f64::NAN)
        );
    }
    println!(
        "A Jain index near 1 means the inner nodes share the channel evenly; \
         values toward 1/n mean one node monopolized it. Averaged over many \
         topologies (see the `fairness` experiment binary), wider beams \
         score consistently lower."
    );
}
