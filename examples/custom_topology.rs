//! Simulating a hand-written topology.
//!
//! Topologies are plain text (`dirca_topology::io`): a `range` header, an
//! optional `measured` count, then one `x y` line per node. This example
//! embeds a small mesh with a bottleneck bridge node and shows per-node
//! results — the kind of scripted scenario you would use to debug a
//! protocol change.
//!
//! Run with: `cargo run --release --example custom_topology`

use dirca::mac::Scheme;
use dirca::net::{run, SimConfig};
use dirca::sim::SimDuration;
use dirca::topology::io;

const SCENARIO: &str = "\
# A dumbbell: two triangles joined through bridge node 3.
#
#   0 --- 1            5
#    \\   /            / \\
#     \\ /            /   \\
#      2 ---- 3 ---- 4 --- 6
#
range 1.0
0.0  1.0
0.9  1.0
0.45 0.4
1.2  0.0
1.95 0.4
2.4  1.0
2.85 0.4
";

fn main() {
    let topology = io::from_text(SCENARIO).expect("valid scenario text");
    assert_eq!(
        topology.degrees(),
        vec![2, 2, 3, 2, 3, 2, 2],
        "scenario drifted from its diagram"
    );
    println!(
        "loaded {} nodes; degrees: {:?}\n",
        topology.len(),
        topology.degrees()
    );
    let config = SimConfig::new(Scheme::DrtsDcts)
        .with_beamwidth_degrees(45.0)
        .with_seed(8)
        .with_warmup(SimDuration::from_millis(200))
        .with_measure(SimDuration::from_secs(5));
    let result = run(&topology, &config);
    println!(
        "{:>5} | {:>10} | {:>8} | {:>9} | {:>10}",
        "node", "throughput", "acked", "delivered", "RTS sent"
    );
    for node in &result.nodes {
        println!(
            "{:>5} | {:>6.0} b/s | {:>8} | {:>9} | {:>10}",
            node.node,
            node.throughput_bps(result.window),
            node.counters.packets_acked,
            node.counters.data_delivered,
            node.counters.rts_tx,
        );
    }
    println!(
        "\nThe bridge node (3) sits in both collision domains at once (no \
         routing layer — each packet goes to a direct neighbour), so its \
         exchanges contend with both triangles; with narrow beams the two \
         triangles can nonetheless run concurrently."
    );
}
