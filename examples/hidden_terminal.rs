//! The hidden-terminal problem, concretely.
//!
//! Three nodes in a line, `A — B — C`: `A` and `C` cannot hear each other
//! but both talk to `B`. This example shows (a) how the RTS/CTS handshake
//! keeps the channel usable despite hidden terminals, and (b) what each
//! scheme's collision avoidance costs: the conservative omni schemes avoid
//! more data collisions but spend more time coordinating.
//!
//! Run with: `cargo run --release --example hidden_terminal`

use dirca::mac::Scheme;
use dirca::net::{run, SimConfig};
use dirca::sim::SimDuration;
use dirca::topology::fixtures;

fn main() {
    let topology = fixtures::hidden_terminal();
    println!("A — B — C line, unit range, A/C mutually hidden\n");
    println!(
        "{:>10} | {:>12} | {:>10} | {:>11} | {:>10}",
        "scheme", "throughput", "RTS sent", "CTS t/outs", "ACK t/outs"
    );
    for scheme in Scheme::ALL {
        let config = SimConfig::new(scheme)
            .with_beamwidth_degrees(45.0)
            .with_seed(7)
            .with_warmup(SimDuration::from_millis(200))
            .with_measure(SimDuration::from_secs(5));
        let result = run(&topology, &config);
        let agg = result.aggregate_counters();
        println!(
            "{:>10} | {:>8.0} b/s | {:>10} | {:>11} | {:>10}",
            scheme.to_string(),
            result.aggregate_throughput_bps(),
            agg.rts_tx,
            agg.cts_timeouts,
            agg.ack_timeouts,
        );
    }
    println!(
        "\nReading the table: CTS timeouts are RTS packets lost to collisions \
         (mostly A and C transmitting into B simultaneously); ACK timeouts are \
         data packets destroyed by hidden terminals that the handshake failed \
         to silence. The RTS/CTS exchange keeps the expensive data-frame \
         collisions rare even though A and C never hear each other."
    );
}
