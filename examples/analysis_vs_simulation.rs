//! Analysis vs simulation, side by side (the paper's §3 vs §4).
//!
//! The analytical model predicts *relative* behaviour — who wins at which
//! beamwidth — rather than absolute numbers (its slotted, Poisson-field
//! abstractions differ from the 802.11 simulation in many details, as the
//! paper itself discusses). This example prints both columns so the shape
//! agreement is visible: DRTS-DCTS dominant at 30°, the advantage eroding
//! with beamwidth, ORTS-OCTS flat.
//!
//! Run with: `cargo run --release --example analysis_vs_simulation`

use dirca::analysis::{optimize, ModelInput, ProtocolTimes};
use dirca::experiments::ringsim::{run_cell, RingExperiment};
use dirca::mac::Scheme;
use dirca::sim::SimDuration;

fn main() {
    let n = 5usize;
    println!("N = {n}: analytical optimum vs simulated mean (normalized throughput)\n");
    println!(
        "{:>7} | {:^23} | {:^23}",
        "", "analysis", "simulation (4 topologies)"
    );
    println!(
        "{:>7} | {:>10} {:>12} | {:>10} {:>12}",
        "θ (deg)", "ORTS-OCTS", "DRTS-DCTS", "ORTS-OCTS", "DRTS-DCTS"
    );
    for theta in [30.0f64, 90.0, 150.0] {
        let input = ModelInput::new(ProtocolTimes::paper(), n as f64, theta.to_radians());
        let a_omni = optimize::max_throughput(Scheme::OrtsOcts, &input).throughput;
        let a_dir = optimize::max_throughput(Scheme::DrtsDcts, &input).throughput;

        let sim = |scheme| {
            let exp = RingExperiment {
                topologies: 4,
                warmup: SimDuration::from_millis(200),
                measure: SimDuration::from_secs(3),
                ..RingExperiment::paper(scheme, n, theta)
            };
            run_cell(&exp, 4).throughput.mean().unwrap_or(0.0)
        };
        let s_omni = sim(Scheme::OrtsOcts);
        let s_dir = sim(Scheme::DrtsDcts);
        println!("{theta:>7.0} | {a_omni:>10.3} {a_dir:>12.3} | {s_omni:>10.3} {s_dir:>12.3}");
    }
    println!(
        "\nThe absolute scales differ (the model normalizes to slots and ignores \
         backoff dynamics); the *ordering* and the θ-trend are what the paper \
         validates, and both columns agree on them."
    );
}
