//! Quickstart: simulate the three collision-avoidance schemes on a small
//! ad hoc network and compare them against the analytical model's
//! prediction.
//!
//! Run with: `cargo run --release --example quickstart`

use dirca::analysis::{optimize, ModelInput, ProtocolTimes};
use dirca::mac::Scheme;
use dirca::net::{run, SimConfig};
use dirca::sim::SimDuration;
use dirca::topology::RingSpec;
use rand::SeedableRng;

fn main() {
    // 1. A random ring topology in the style of the paper's experiments:
    //    N = 5 expected neighbours, rings out to 3R, degree constraints on.
    let spec = RingSpec::paper(5, 1.0);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2003);
    let topology = spec.generate(&mut rng).expect("topology generation");
    println!(
        "topology: {} nodes ({} measured), degrees {:?}",
        topology.len(),
        topology.measured,
        &topology.degrees()[..topology.measured]
    );

    // 2. Simulate each scheme with 30° beams and saturated 1460-byte CBR.
    println!(
        "\n{:>10} | {:>12} | {:>9} | {:>15}",
        "scheme", "throughput", "delay", "collision ratio"
    );
    for scheme in Scheme::ALL {
        let config = SimConfig::new(scheme)
            .with_beamwidth_degrees(30.0)
            .with_seed(42)
            .with_warmup(SimDuration::from_millis(200))
            .with_measure(SimDuration::from_secs(5));
        let result = run(&topology, &config);
        println!(
            "{:>10} | {:>8.0} b/s | {:>6.1} ms | {:>15.3}",
            scheme.to_string(),
            result.aggregate_throughput_bps(),
            result
                .mean_delay()
                .map_or(f64::NAN, |d| d.as_secs_f64() * 1e3),
            result.collision_ratio().unwrap_or(f64::NAN),
        );
    }

    // 3. What does the analytical model of Section 2 predict at this
    //    density and beamwidth?
    println!("\nanalytical maximum achievable throughput (N = 5, θ = 30°):");
    let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 30f64.to_radians());
    for scheme in Scheme::ALL {
        let best = optimize::max_throughput(scheme, &input);
        println!(
            "{:>10} : {:.3} (at attempt probability p = {:.4})",
            scheme.to_string(),
            best.throughput,
            best.p
        );
    }
}
