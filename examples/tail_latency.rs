//! Tail latency under load: mean delay hides what the directional schemes
//! do to the *distribution*.
//!
//! Runs Poisson traffic at a moderate load on one ring topology under
//! ORTS-OCTS and DRTS-DCTS with per-packet delay recording, and prints
//! p50/p95/p99 of the end-to-end delay.
//!
//! Run with: `cargo run --release --example tail_latency`

use dirca::mac::Scheme;
use dirca::net::{run, SimConfig, TrafficModel};
use dirca::sim::SimDuration;
use dirca::stats::percentile;
use dirca::topology::RingSpec;
use rand::SeedableRng;

fn main() {
    let spec = RingSpec::paper(5, 1.0);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(404);
    let topology = spec.generate(&mut rng).expect("topology generation");

    println!(
        "{:>10} | {:>9} | {:>9} | {:>9} | {:>9}",
        "scheme", "packets", "p50 (ms)", "p95 (ms)", "p99 (ms)"
    );
    for scheme in [Scheme::OrtsOcts, Scheme::DrtsDcts] {
        let mut config = SimConfig::new(scheme)
            .with_beamwidth_degrees(30.0)
            .with_seed(21)
            .with_traffic(TrafficModel::Poisson {
                packets_per_sec: 12.0,
                max_queue: 32,
            })
            .with_warmup(SimDuration::from_millis(500))
            .with_measure(SimDuration::from_secs(20));
        config.record_delays = true;
        let result = run(&topology, &config);
        let delays_ms: Vec<f64> = result.delay_samples().iter().map(|d| d * 1e3).collect();
        let p = |q: f64| percentile(&delays_ms, q).unwrap_or(f64::NAN);
        println!(
            "{:>10} | {:>9} | {:>9.1} | {:>9.1} | {:>9.1}",
            scheme.to_string(),
            delays_ms.len(),
            p(50.0),
            p(95.0),
            p(99.0),
        );
    }
    println!(
        "\nAt the same offered load, spatial reuse shortens the queueing tail: \
         the p99 gap is typically much larger than the mean-delay gap of Fig. 7."
    );
}
