//! The runtime invariant auditors: each must stay silent on a healthy
//! (golden) run and fire on corrupted state.
//!
//! These tests enable the `audit` features of `dirca-sim`, `dirca-net`,
//! and `dirca-analysis` through this package's dev-dependencies; normal
//! builds compile none of the auditing code.

use dirca_analysis::{markov_audit, steady_state, ChainInput};
use dirca_mac::{DataPacket, Dot11Params, Frame, MacConfig, MacContext, Scheme, TimerKind};
use dirca_net::audit::{standard_auditors, AirtimeAuditor, NavAuditor, TransceiverAuditor};
use dirca_net::{NetEvent, NetWorld, SimConfig, TraceEntry};
use dirca_radio::{NodeId, SignalId};
use dirca_sim::audit::{Auditor, CausalityAuditor};
use dirca_sim::{SimDuration, SimTime, Simulation, TimerGeneration};
use dirca_topology::fixtures;

fn quick(scheme: Scheme, seed: u64) -> SimConfig {
    SimConfig::new(scheme)
        .with_seed(seed)
        .with_warmup(SimDuration::from_millis(50))
        .with_measure(SimDuration::from_millis(400))
}

/// Builds a primed, trace-enabled simulation of `scheme` on the
/// hidden-terminal fixture.
fn audited_sim(scheme: Scheme, seed: u64) -> Simulation<NetWorld> {
    let topo = fixtures::hidden_terminal();
    let mut world = NetWorld::build(&topo, &quick(scheme, seed));
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    sim
}

// ---------------------------------------------------------------------
// Golden runs: every auditor observes a healthy simulation end to end and
// must not fire.
// ---------------------------------------------------------------------

#[test]
fn all_auditors_silent_on_golden_runs() {
    for scheme in Scheme::ALL {
        let mut sim = audited_sim(scheme, 11);
        for auditor in standard_auditors() {
            sim.add_auditor(auditor);
        }
        sim.run_until(SimTime::from_millis(500));
        sim.finish_audit();
        assert!(sim.world().macs().iter().any(|m| m.counters().rts_tx > 0));
    }
}

#[test]
fn auditors_silent_on_directional_parallel_pairs() {
    let topo = fixtures::parallel_pairs();
    let mut world = NetWorld::build(
        &topo,
        &quick(Scheme::DrtsDcts, 3).with_beamwidth_degrees(30.0),
    );
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    for auditor in standard_auditors() {
        sim.add_auditor(auditor);
    }
    sim.run_until(SimTime::from_millis(500));
    sim.finish_audit();
}

#[test]
fn auditors_silent_under_fault_injection() {
    // Fault injection must not bend any physical invariant: corrupted and
    // outage-lost receptions still balance airtime, wave edges, and NAV
    // bookkeeping. Run with an aggressive FER plus a mid-run outage and
    // keep every auditor installed.
    let topo = fixtures::hidden_terminal();
    let plan = dirca_net::FaultPlan::default()
        .with_frame_error_rate(0.25)
        .with_outage(
            NodeId(1),
            SimTime::from_millis(100),
            SimTime::from_millis(220),
        );
    let mut world = NetWorld::build(&topo, &quick(Scheme::OrtsOcts, 9).with_fault(plan));
    world.enable_trace();
    let mut sim = Simulation::new(world);
    {
        let (world, sched) = sim.world_and_scheduler_mut();
        world.prime(sched);
    }
    for auditor in standard_auditors() {
        sim.add_auditor(auditor);
    }
    sim.run_until(SimTime::from_millis(500));
    sim.finish_audit();
    let faults_hit: u64 = sim
        .world()
        .app_stats()
        .iter()
        .map(|a| a.fer_losses + a.outage_losses)
        .sum();
    assert!(faults_hit > 0, "the plan must actually inject losses");
}

// ---------------------------------------------------------------------
// Causality.
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "audit[causality]")]
fn causality_auditor_fires_on_backwards_clock() {
    let world = NetWorld::build(&fixtures::pair(0.5, 1.0), &quick(Scheme::OrtsOcts, 1));
    let mut auditor = CausalityAuditor::new();
    let event = NetEvent::Arrival { node: NodeId(0) };
    Auditor::<NetWorld>::before_event(&mut auditor, SimTime::from_micros(50), &event, &world);
    // A later dispatch carrying an earlier timestamp: corrupted ordering.
    Auditor::<NetWorld>::before_event(&mut auditor, SimTime::from_micros(10), &event, &world);
}

// ---------------------------------------------------------------------
// NAV consistency.
// ---------------------------------------------------------------------

/// A minimal MacContext: enough to drive a DcfMac into a corrupted-looking
/// state without a full network behind it.
struct NullCtx {
    now: SimTime,
}

impl MacContext for NullCtx {
    fn now(&self) -> SimTime {
        self.now
    }
    fn carrier_busy(&self) -> bool {
        false
    }
    fn transmit(&mut self, _frame: Frame, _directional: bool) {}
    fn schedule_timer(&mut self, _kind: TimerKind, _gen: TimerGeneration, _delay: SimDuration) {}
    fn draw_backoff_slots(&mut self, _cw: u32) -> u32 {
        0
    }
    fn deliver(&mut self, _frame: &Frame) {}
    fn packet_done(&mut self, _packet: DataPacket, _success: bool) {}
}

#[test]
#[should_panic(expected = "audit[nav]")]
fn nav_auditor_fires_on_rts_inside_reservation() {
    let params = Dot11Params::default();
    let mut mac = dirca_mac::DcfMac::new(
        NodeId(0),
        Scheme::OrtsOcts,
        params.clone(),
        MacConfig::default(),
    );
    // Overhear a third-party RTS: the MAC reserves its NAV for the
    // announced duration.
    let overheard = Frame::rts(NodeId(1), NodeId(2), 1460, &params);
    let mut ctx = NullCtx {
        now: SimTime::from_micros(100),
    };
    mac.on_frame_received(overheard, &mut ctx);
    assert!(mac.nav().is_busy(SimTime::from_micros(150)));
    // A trace entry claiming this node sent an RTS mid-reservation is a
    // deferral bug; the auditor must call it out.
    let entry = TraceEntry {
        time: SimTime::from_micros(150),
        frame: Frame::rts(NodeId(0), NodeId(1), 1460, &params),
        directional: false,
    };
    NavAuditor::check_entry(&entry, &mac);
}

#[test]
fn nav_auditor_silent_on_rts_after_expiry() {
    let params = Dot11Params::default();
    let mut mac = dirca_mac::DcfMac::new(
        NodeId(0),
        Scheme::OrtsOcts,
        params.clone(),
        MacConfig::default(),
    );
    let overheard = Frame::rts(NodeId(1), NodeId(2), 1460, &params);
    let mut ctx = NullCtx {
        now: SimTime::from_micros(100),
    };
    mac.on_frame_received(overheard, &mut ctx);
    let entry = TraceEntry {
        time: mac.nav().until(), // the reservation is half-open: free again
        frame: Frame::rts(NodeId(0), NodeId(1), 1460, &params),
        directional: false,
    };
    NavAuditor::check_entry(&entry, &mac);
}

// ---------------------------------------------------------------------
// Transceiver state-machine legality.
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "audit[transceiver]")]
fn transceiver_auditor_fires_on_orphan_signal_end() {
    let world = NetWorld::build(&fixtures::pair(0.5, 1.0), &quick(Scheme::OrtsOcts, 1));
    let mut auditor = TransceiverAuditor::new();
    let params = world.params().clone();
    // A trailing edge whose leading edge never happened: the wave from
    // node 0 covers node 1, whose `(dst, id)` pair was never inserted.
    let event = NetEvent::WaveEnd {
        src: NodeId(0),
        id: SignalId(9),
        frame: Frame::rts(NodeId(0), NodeId(1), 1460, &params),
        directional: false,
    };
    auditor.before_event(SimTime::from_micros(10), &event, &world);
}

#[test]
#[should_panic(expected = "audit[transceiver]")]
fn transceiver_auditor_fires_on_txend_without_transmission() {
    let world = NetWorld::build(&fixtures::pair(0.5, 1.0), &quick(Scheme::OrtsOcts, 1));
    let mut auditor = TransceiverAuditor::new();
    let event = NetEvent::TxEnd { node: NodeId(0) };
    auditor.before_event(SimTime::from_micros(10), &event, &world);
}

// ---------------------------------------------------------------------
// Airtime conservation.
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "audit[airtime]")]
fn airtime_auditor_fires_when_installed_mid_run() {
    // The auditor integrates PHY transmit time from simulated time zero; a
    // run it only observed partway has trace-declared airtime it never saw
    // on the PHY, and the conservation check must fail rather than report
    // a bogus balance.
    let mut sim = audited_sim(Scheme::OrtsOcts, 5);
    sim.run_until(SimTime::from_millis(100));
    sim.add_auditor(Box::new(AirtimeAuditor::new()));
    sim.run_until(SimTime::from_millis(120));
    sim.finish_audit();
}

// ---------------------------------------------------------------------
// Markov-chain stochasticity.
// ---------------------------------------------------------------------

fn chain(p_ww: f64, p_ws: f64) -> ChainInput {
    ChainInput {
        p_ww,
        p_ws,
        t_succeed: 119.0,
        t_fail: 12.0,
        l_data: 100.0,
    }
}

#[test]
fn markov_audit_silent_on_valid_chain() {
    let input = chain(0.9, 0.05);
    // With the audit feature on, steady_state self-checks every solve.
    let ss = steady_state(&input);
    markov_audit::assert_stochastic(&markov_audit::transition_matrix(&input));
    markov_audit::assert_fixed_point(&input, &ss);
}

#[test]
#[should_panic(expected = "audit[markov]")]
fn markov_audit_fires_on_non_stochastic_row() {
    // Row 0 sums to 1.2: not a probability distribution.
    let m = [[0.9, 0.2, 0.1], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
    markov_audit::assert_stochastic(&m);
}

#[test]
#[should_panic(expected = "audit[markov]")]
fn markov_audit_fires_on_negative_probability() {
    let m = [[1.1, -0.1, 0.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
    markov_audit::assert_stochastic(&m);
}

#[test]
#[should_panic(expected = "audit[markov]")]
fn markov_audit_fires_on_fake_fixed_point() {
    let input = chain(0.9, 0.05);
    let mut ss = steady_state(&input);
    // Shift probability mass between states: still sums to one, but no
    // longer a fixed point of the transition matrix.
    ss.wait -= 0.05;
    ss.fail += 0.05;
    markov_audit::assert_fixed_point(&input, &ss);
}
