//! Cross-crate integration tests: the full stack (topology → radio → MAC →
//! metrics) on deterministic fixtures.

// Unwraps and exact float comparisons are idiomatic in test assertions.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dirca::mac::Scheme;
use dirca::net::{run, RunResult, SimConfig, TrafficModel};
use dirca::sim::SimDuration;
use dirca::topology::{fixtures, Topology};

fn quick(scheme: Scheme, seed: u64) -> SimConfig {
    SimConfig::new(scheme)
        .with_seed(seed)
        .with_warmup(SimDuration::from_millis(100))
        .with_measure(SimDuration::from_secs(2))
}

fn run_fixture(topology: &Topology, scheme: Scheme, seed: u64) -> RunResult {
    run(topology, &quick(scheme, seed))
}

/// Network-wide frame-conservation invariants that must hold for any run
/// on any topology under any scheme.
fn check_conservation(result: &RunResult) {
    let mut rts = 0u64;
    let mut cts_tx = 0u64;
    let mut data_tx = 0u64;
    let mut ack_tx = 0u64;
    let mut delivered = 0u64;
    let mut duplicates = 0u64;
    let mut acked = 0u64;
    let mut cts_timeouts = 0u64;
    let mut ack_timeouts = 0u64;
    for node in &result.nodes {
        let c = &node.counters;
        rts += c.rts_tx;
        cts_tx += c.cts_tx;
        data_tx += c.data_tx;
        ack_tx += c.ack_tx;
        delivered += c.data_delivered;
        duplicates += c.duplicates_dropped;
        acked += c.packets_acked;
        cts_timeouts += c.cts_timeouts;
        ack_timeouts += c.ack_timeouts;
    }
    // Every data transmission required a decoded CTS; every decoded CTS
    // required a transmitted CTS; every CTS answers a decoded RTS. Slack:
    // an RTS or CTS transmitted just before the warm-up counter reset can
    // enable a DATA counted just after it — at most one handshake in
    // flight per node.
    let boundary_slack = result.nodes.len() as u64;
    assert!(
        rts + boundary_slack >= data_tx,
        "more DATA sent than RTS: {data_tx} > {rts} + {boundary_slack}"
    );
    assert!(
        cts_tx + boundary_slack >= data_tx,
        "more DATA sent than CTS transmitted: {data_tx} > {cts_tx} + {boundary_slack}"
    );
    // Receivers ACK exactly the data frames they accepted — fresh
    // deliveries plus re-ACKed duplicates.
    assert!(
        ack_tx <= delivered + duplicates,
        "more ACKs than accepted frames: {ack_tx} > {delivered} + {duplicates}"
    );
    // A sender counts success only after decoding an ACK. Slack: an ACK
    // transmitted just before the warm-up counter reset is decoded (and
    // counted by the sender) just after it — at most one in-flight frame
    // per node.
    let inflight_slack = result.nodes.len() as u64;
    assert!(
        acked <= ack_tx + inflight_slack,
        "more successes than ACKs: {acked} > {ack_tx} + {inflight_slack}"
    );
    // Deliveries can't exceed data transmissions (same warm-up boundary
    // slack).
    assert!(
        delivered <= data_tx + inflight_slack,
        "more deliveries than data frames: {delivered} > {data_tx}"
    );
    // Sender-side accounting: every RTS ends in exactly one of {CTS
    // received (data_tx), CTS timeout}, modulo handshakes still in flight
    // at the measurement boundaries.
    let settled = data_tx + cts_timeouts;
    assert!(
        settled <= rts + 2,
        "RTS accounting broken: {settled} settled vs {rts} sent"
    );
    assert!(
        rts <= settled + 2 * result.nodes.len() as u64,
        "too many unsettled RTS: {rts} sent vs {settled} settled"
    );
    // ACK timeouts can't exceed data transmissions.
    assert!(ack_timeouts <= data_tx);
}

#[test]
fn conservation_holds_on_all_fixtures_and_schemes() {
    let topologies = [
        fixtures::pair(0.5, 1.0),
        fixtures::hidden_terminal(),
        fixtures::parallel_pairs(),
        fixtures::line(6, 0.7, 1.0),
        fixtures::star(5, 0.8, 1.0),
        fixtures::ring_of(6, 1.0, 2.5),
    ];
    for topology in &topologies {
        for scheme in Scheme::ALL {
            let result = run_fixture(topology, scheme, 99);
            check_conservation(&result);
        }
    }
}

#[test]
fn saturated_pair_is_efficient_and_lossless() {
    let result = run_fixture(&fixtures::pair(0.5, 1.0), Scheme::OrtsOcts, 5);
    assert_eq!(result.packets_dropped(), 0);
    assert_eq!(result.collision_ratio(), Some(0.0));
    let util = result.aggregate_throughput_bps() / 2e6;
    assert!(util > 0.6, "clean-link utilization only {util}");
    // The theoretical ceiling with zero backoff: 11 680 data bits per
    // DIFS + RTS + CTS + DATA + ACK + 3×SIFS cycle ≈ 6 884 µs → 84.8% of
    // the 2 Mbps channel. Anything above that is a protocol violation.
    assert!(util < 0.849, "utilization {util} above protocol ceiling");
}

#[test]
fn full_mesh_shares_one_channel() {
    // Six nodes all in range: no spatial reuse possible, so aggregate
    // throughput must stay at single-channel scale even under DRTS-DCTS
    // (beams still silence third parties at these distances), and the sum
    // cannot exceed the channel rate.
    let topology = fixtures::ring_of(6, 1.0, 2.5);
    for scheme in Scheme::ALL {
        let result = run_fixture(&topology, scheme, 17);
        let util = result.aggregate_throughput_bps() / 2e6;
        assert!(util < 0.85, "{scheme}: impossible utilization {util}");
        assert!(util > 0.3, "{scheme}: collapsed to {util}");
    }
}

#[test]
fn parallel_pairs_exceed_single_channel_with_beams() {
    // The whole point of directional transmission: two disjoint beams can
    // run concurrently, so aggregate utilization can exceed what a single
    // shared channel would allow.
    let config = quick(Scheme::DrtsDcts, 23).with_beamwidth_degrees(30.0);
    let result = run(&fixtures::parallel_pairs(), &config);
    let util = result.aggregate_throughput_bps() / 2e6;
    assert!(util > 0.9, "no spatial reuse achieved: {util}");
}

#[test]
fn delays_are_physically_plausible() {
    // A handshake takes ~6.8 ms on the air; mean MAC delay must be at
    // least that and no more than a few hundred ms at this contention.
    let result = run_fixture(&fixtures::hidden_terminal(), Scheme::OrtsOcts, 31);
    let delay = result.mean_delay().expect("packets were delivered");
    let ms = delay.as_secs_f64() * 1e3;
    assert!(ms > 6.8, "delay {ms} ms below the physical floor");
    assert!(ms < 500.0, "delay {ms} ms implausibly large");
}

#[test]
fn results_identical_across_repeated_runs() {
    let topology = fixtures::parallel_pairs();
    for scheme in Scheme::ALL {
        let a = run_fixture(&topology, scheme, 7);
        let b = run_fixture(&topology, scheme, 7);
        assert_eq!(a.events_processed(), b.events_processed(), "{scheme}");
        assert_eq!(a.packets_acked(), b.packets_acked(), "{scheme}");
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.counters.rts_tx, nb.counters.rts_tx, "{scheme}");
            assert_eq!(
                na.counters.service_delay_total, nb.counters.service_delay_total,
                "{scheme}"
            );
        }
    }
}

#[test]
fn beamwidth_bounds_coverage_monotonically() {
    // Widening the beam can only add interference: on parallel pairs,
    // DRTS-DCTS throughput must not increase when going from 30° to 180°.
    let narrow = run(
        &fixtures::parallel_pairs(),
        &quick(Scheme::DrtsDcts, 3).with_beamwidth_degrees(30.0),
    );
    let wide = run(
        &fixtures::parallel_pairs(),
        &quick(Scheme::DrtsDcts, 3).with_beamwidth_degrees(180.0),
    );
    assert!(
        narrow.aggregate_throughput_bps() >= wide.aggregate_throughput_bps(),
        "narrow {} < wide {}",
        narrow.aggregate_throughput_bps(),
        wide.aggregate_throughput_bps()
    );
}

#[test]
fn unsaturated_traffic_stops() {
    // With saturation off and no packets enqueued, the network stays
    // silent: zero events beyond priming, zero throughput.
    let mut config = quick(Scheme::OrtsOcts, 1);
    config.traffic = TrafficModel::Manual;
    let result = run(&fixtures::pair(0.5, 1.0), &config);
    assert_eq!(result.packets_acked(), 0);
    assert_eq!(result.aggregate_throughput_bps(), 0.0);
}
