//! The paper's qualitative results, checked end-to-end at reduced scale.
//!
//! These tests run the real experiment harness (ring topologies, all three
//! schemes) with fewer topologies and shorter windows than the paper, and
//! assert the *shape* of the published results: orderings and trends, not
//! absolute numbers.

use dirca::experiments::ringsim::{run_cell, RingExperiment};
use dirca::mac::Scheme;
use dirca::sim::SimDuration;

fn cell(scheme: Scheme, n: usize, theta: f64) -> RingExperiment {
    // Per-topology variance is large (full-scale min–max ranges span ~10×),
    // so the sample must be big enough for the orderings to be stable: 14
    // topologies keeps each cell under a few seconds while separating the
    // scheme means well beyond their standard errors.
    RingExperiment {
        topologies: 14,
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_secs(3),
        ..RingExperiment::paper(scheme, n, theta)
    }
}

fn mean_throughput(scheme: Scheme, n: usize, theta: f64) -> f64 {
    run_cell(&cell(scheme, n, theta), 4)
        .throughput
        .mean()
        .expect("throughput samples")
}

#[test]
fn fig6_drts_dcts_wins_at_narrow_beams() {
    // The headline: at θ = 30°, the all-directional scheme beats the
    // omni baseline in simulated throughput (N = 5 panel of Fig. 6).
    let dir = mean_throughput(Scheme::DrtsDcts, 5, 30.0);
    let omni = mean_throughput(Scheme::OrtsOcts, 5, 30.0);
    assert!(
        dir > 1.1 * omni,
        "DRTS-DCTS ({dir:.3}) must clearly beat ORTS-OCTS ({omni:.3}) at 30°"
    );
}

#[test]
fn fig6_orts_octs_ignores_beamwidth() {
    // The omni scheme never beamforms, so its results are identical (same
    // seeds, same dynamics) across the θ grid.
    // (Tolerance only for thread-order float aggregation; the underlying
    // per-topology samples are bit-identical.)
    let a = mean_throughput(Scheme::OrtsOcts, 3, 30.0);
    let b = mean_throughput(Scheme::OrtsOcts, 3, 150.0);
    assert!(
        (a - b).abs() < 1e-12,
        "ORTS-OCTS must be beamwidth-independent: {a} vs {b}"
    );
}

#[test]
fn fig7_drts_dcts_has_lowest_delay_at_narrow_beams() {
    // Fig. 7: less waiting under aggressive spatial reuse.
    let dir = run_cell(&cell(Scheme::DrtsDcts, 5, 30.0), 4)
        .delay_ms
        .mean()
        .expect("delay samples");
    let omni = run_cell(&cell(Scheme::OrtsOcts, 5, 30.0), 4)
        .delay_ms
        .mean()
        .expect("delay samples");
    assert!(
        dir < omni,
        "DRTS-DCTS delay {dir:.1} ms must undercut ORTS-OCTS {omni:.1} ms"
    );
}

#[test]
fn collision_ratio_orders_by_aggressiveness() {
    // §4: the directional schemes trade higher collision rates for reuse;
    // the conservative omni scheme has the best collision avoidance.
    let omni = run_cell(&cell(Scheme::OrtsOcts, 5, 30.0), 4)
        .collision_ratio
        .mean()
        .expect("collision samples");
    let dir = run_cell(&cell(Scheme::DrtsDcts, 5, 30.0), 4)
        .collision_ratio
        .mean()
        .expect("collision samples");
    assert!(
        dir >= omni,
        "DRTS-DCTS collision ratio {dir:.3} must not undercut ORTS-OCTS {omni:.3}"
    );
}

#[test]
fn throughput_degrades_with_density_for_omni() {
    // More neighbours, more contention, less per-region throughput under
    // the conservative scheme.
    let sparse = mean_throughput(Scheme::OrtsOcts, 3, 90.0);
    let dense = mean_throughput(Scheme::OrtsOcts, 8, 90.0);
    assert!(
        dense < sparse * 1.05,
        "ORTS-OCTS at N=8 ({dense:.3}) should not beat N=3 ({sparse:.3})"
    );
}
